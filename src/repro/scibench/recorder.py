"""Measurement recorder (the LibSciBench ``LSB_Rec`` role).

The paper instruments each benchmark's "three main components of
application time: kernel execution, host setup and memory transfer
operations" (§2).  A :class:`Recorder` accumulates samples per named
region, optionally tagged with energy and counter values, and produces
:class:`~repro.scibench.stats.SampleSummary` tables plus a simple CSV
dump (LibSciBench writes ``.r`` trace files for R; CSV is our
equivalent).
"""

from __future__ import annotations

import io
from collections import defaultdict
from dataclasses import dataclass, field

from .stats import SampleSummary, summarize

#: Canonical region names used across the suite.
REGION_KERNEL = "kernel"
REGION_SETUP = "host_setup"
REGION_TRANSFER = "transfer"


@dataclass
class Measurement:
    """One recorded sample of one region."""

    region: str
    time_s: float
    energy_j: float | None = None
    tags: dict = field(default_factory=dict)


class Recorder:
    """Accumulates per-region timing (and energy) samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self._measurements: list[Measurement] = []

    # ------------------------------------------------------------------
    def record(self, region: str, time_s: float, energy_j: float | None = None,
               **tags) -> None:
        """Record one sample."""
        if time_s < 0:
            raise ValueError(f"negative time {time_s} for region {region!r}")
        self._measurements.append(
            Measurement(region=region, time_s=time_s, energy_j=energy_j, tags=dict(tags))
        )

    def record_event(self, region: str, event) -> None:
        """Record an OpenCL event's device time (and energy if present).

        Besides the command type, the kernel name and bytes moved are
        propagated from ``event.info`` into the measurement tags so
        per-kernel/per-transfer breakdowns survive into the CSV and
        LSB outputs instead of collapsing into one anonymous region.
        """
        tags = {"command": event.command_type.value}
        if "kernel" in event.info:
            tags["kernel"] = event.info["kernel"]
        if "bytes" in event.info:
            tags["bytes"] = event.info["bytes"]
        self.record(
            region,
            event.duration_s,
            energy_j=event.info.get("energy_j"),
            **tags,
        )

    # ------------------------------------------------------------------
    @property
    def regions(self) -> tuple[str, ...]:
        """Region names in first-recorded order."""
        seen: dict[str, None] = {}
        for m in self._measurements:
            seen.setdefault(m.region, None)
        return tuple(seen)

    def times_s(self, region: str) -> list[float]:
        """All timing samples of one region, in recording order."""
        return [m.time_s for m in self._measurements if m.region == region]

    def energies_j(self, region: str) -> list[float]:
        """All energy samples of one region (records without energy skipped)."""
        return [
            m.energy_j
            for m in self._measurements
            if m.region == region and m.energy_j is not None
        ]

    def count(self, region: str | None = None) -> int:
        """Number of samples in one region (or in total, with ``None``)."""
        if region is None:
            return len(self._measurements)
        return sum(1 for m in self._measurements if m.region == region)

    # ------------------------------------------------------------------
    def summary(self, region: str) -> SampleSummary:
        """Summary statistics of a region's timing samples."""
        samples = self.times_s(region)
        if not samples:
            raise KeyError(f"no samples recorded for region {region!r}")
        return summarize(samples)

    def summaries(self) -> dict[str, SampleSummary]:
        """Per-region timing summaries, keyed by region name."""
        return {r: self.summary(r) for r in self.regions}

    def energy_summary(self, region: str) -> SampleSummary:
        """Summary statistics of a region's energy samples."""
        samples = self.energies_j(region)
        if not samples:
            raise KeyError(f"no energy samples recorded for region {region!r}")
        return summarize(samples)

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """All samples as CSV text (region, time_s, energy_j, tags).

        Tags are rendered ``key=value`` joined with ``;`` so the column
        stays a single CSV field without quoting.
        """
        out = io.StringIO()
        out.write("region,time_s,energy_j,tags\n")
        for m in self._measurements:
            energy = "" if m.energy_j is None else f"{m.energy_j:.9g}"
            tags = ";".join(f"{k}={v}" for k, v in sorted(m.tags.items()))
            out.write(f"{m.region},{m.time_s:.9g},{energy},{tags}\n")
        return out.getvalue()

    def clear(self) -> None:
        """Drop every recorded sample."""
        self._measurements.clear()

    def __len__(self) -> int:
        return len(self._measurements)

    def __repr__(self) -> str:
        per = defaultdict(int)
        for m in self._measurements:
            per[m.region] += 1
        parts = ", ".join(f"{r}: {n}" for r, n in per.items()) or "empty"
        return f"<Recorder {self.name!r} {parts}>"
