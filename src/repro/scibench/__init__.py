"""LibSciBench-style measurement library: timers, stats, recorder."""

from .recorder import (
    Measurement,
    Recorder,
    REGION_KERNEL,
    REGION_SETUP,
    REGION_TRANSFER,
)
from . import lsb
from .stats import (
    SampleSummary,
    achieved_power,
    bootstrap_ratio_ci,
    coefficient_of_variation,
    cohens_d,
    required_sample_size,
    summarize,
    welch_t_test,
)
from .timer import DeviceClock, TIMER_OVERHEAD_NS, WallClock

__all__ = [
    "lsb",
    "DeviceClock",
    "Measurement",
    "REGION_KERNEL",
    "REGION_SETUP",
    "REGION_TRANSFER",
    "Recorder",
    "SampleSummary",
    "TIMER_OVERHEAD_NS",
    "WallClock",
    "achieved_power",
    "bootstrap_ratio_ci",
    "coefficient_of_variation",
    "cohens_d",
    "required_sample_size",
    "summarize",
    "welch_t_test",
]
