"""High-resolution timers.

LibSciBench's selling point is a cycle-resolution timer with ~6 ns
overhead (paper §2).  Two clocks are provided:

* :class:`WallClock` — real ``perf_counter_ns`` wall time, for timing
  the simulator itself (used by the pytest-benchmark harness);
* :class:`DeviceClock` — reads the simulated device clock of a
  :class:`~repro.ocl.queue.CommandQueue`, for timing *modeled* regions
  the way LibSciBench brackets OpenCL calls.

Both expose the same ``start``/``stop``/``elapsed_ns`` interface so the
recorder does not care which one it is fed.
"""

from __future__ import annotations

import time

#: Documented overhead of one LibSciBench timer read, ns.
TIMER_OVERHEAD_NS = 6


class WallClock:
    """Monotonic wall-clock timer with nanosecond reads."""

    def __init__(self):
        self._start_ns: int | None = None
        self._elapsed_ns = 0

    def start(self) -> None:
        """Begin a timing interval."""
        self._start_ns = time.perf_counter_ns()

    def stop(self) -> int:
        """Stop and return the elapsed nanoseconds of this interval."""
        if self._start_ns is None:
            raise RuntimeError("timer stopped without being started")
        delta = time.perf_counter_ns() - self._start_ns
        self._start_ns = None
        self._elapsed_ns += delta
        return delta

    @property
    def elapsed_ns(self) -> int:
        """Total nanoseconds accumulated across intervals."""
        return self._elapsed_ns

    def reset(self) -> None:
        """Discard the running interval and the accumulated total."""
        self._start_ns = None
        self._elapsed_ns = 0

    def __enter__(self) -> "WallClock":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class DeviceClock:
    """Timer over a simulated command queue's device clock."""

    def __init__(self, queue):
        self.queue = queue
        self._start_ns: int | None = None
        self._elapsed_ns = 0

    def start(self) -> None:
        """Begin a timing interval on the device clock."""
        self._start_ns = self.queue.device_time_ns

    def stop(self) -> int:
        """Stop and return the elapsed device nanoseconds."""
        if self._start_ns is None:
            raise RuntimeError("timer stopped without being started")
        delta = self.queue.device_time_ns - self._start_ns
        self._start_ns = None
        self._elapsed_ns += delta
        return delta

    @property
    def elapsed_ns(self) -> int:
        """Total device nanoseconds accumulated across intervals."""
        return self._elapsed_ns

    def reset(self) -> None:
        """Discard the running interval and the accumulated total."""
        self._start_ns = None
        self._elapsed_ns = 0

    def __enter__(self) -> "DeviceClock":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
