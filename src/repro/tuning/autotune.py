"""Local work-group size auto-tuning (paper §7).

"Certain configuration parameters for the benchmarks, e.g. local
workgroup size, are amenable to auto-tuning.  We plan to integrate
auto-tuning into the benchmarking framework to provide confidence that
the optimal parameters are used for each combination of code and
accelerator."

The paper also notes that baked-in local work-group sizes were among
the platform-specific optimisations that hurt or broke the original
OpenDwarfs on newer devices (§6).  This module provides that
auto-tuner over the analytic model: the local size affects

* **lane alignment** — a group that is not a multiple of the device's
  scheduling width (warp 32 on NVIDIA, wavefront 64 on AMD, the SIMD
  width on CPUs) wastes the remainder lanes of its last sub-group;
* **dispatch overhead** — smaller groups mean more groups, each paying
  the per-group dispatch cost;
* **tail imbalance** — groups that do not divide the NDRange leave a
  partially-filled last group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..devices.specs import DeviceSpec, Vendor
from ..ocl.ndrange import MAX_WORK_GROUP_SIZE
from ..ocl.types import DeviceType
from ..perfmodel.characterization import KernelProfile
from ..perfmodel.roofline import TimeBreakdown, kernel_time

#: Candidate local sizes swept by the tuner.
CANDIDATE_LOCAL_SIZES = tuple(2**k for k in range(0, 11))  # 1 .. 1024


def scheduling_width(spec: DeviceSpec) -> int:
    """The device's native sub-group width.

    Parameters
    ----------
    spec : DeviceSpec
        The device to query.

    Returns
    -------
    int
        Warp (32) on NVIDIA GPUs, wavefront (64) on AMD GPUs, and the
        fp32 SIMD lane count on CPUs/MIC — the granularity at which
        hardware schedules work items.
    """
    if spec.device_type == DeviceType.GPU:
        return 64 if spec.vendor == Vendor.AMD else 32
    return max(1, spec.compute.simd_width_bits // 32)


def alignment_efficiency(spec: DeviceSpec, local_size: int) -> float:
    """Fraction of scheduled lanes doing useful work for a local size.

    A local size below the scheduling width leaves the rest of the
    sub-group idle; a size that is not a multiple wastes the remainder
    of its last sub-group.

    Parameters
    ----------
    spec : DeviceSpec
        The device whose scheduling width applies.
    local_size : int
        Work items per work group; must be positive.

    Returns
    -------
    float
        Useful-lane fraction in (0, 1]; exactly 1.0 when
        ``local_size`` is a multiple of the scheduling width.

    Raises
    ------
    ValueError
        If ``local_size`` is not positive.
    """
    width = scheduling_width(spec)
    if local_size <= 0:
        raise ValueError(f"local size must be positive, got {local_size}")
    scheduled = math.ceil(local_size / width) * width
    return local_size / scheduled


def tuned_kernel_time(spec: DeviceSpec, profile: KernelProfile,
                      local_size: int) -> TimeBreakdown:
    """Model a kernel launched with an explicit local work-group size.

    Lost alignment lanes stretch the computed work (flops and int ops
    scale by ``1 / alignment_efficiency``); memory traffic is
    unchanged, so memory-bound kernels are less local-size sensitive.

    Parameters
    ----------
    spec : DeviceSpec
        The target device.
    profile : KernelProfile
        The kernel's architecture-independent characterization.
    local_size : int
        Work items per work group to model.

    Returns
    -------
    TimeBreakdown
        The roofline breakdown for the adjusted launch.

    Raises
    ------
    ValueError
        If ``local_size`` exceeds the device maximum work-group size.
    """
    if local_size > MAX_WORK_GROUP_SIZE:
        raise ValueError(
            f"local size {local_size} exceeds the device maximum "
            f"{MAX_WORK_GROUP_SIZE}")
    groups = math.ceil(profile.work_items / local_size)
    efficiency = alignment_efficiency(spec, min(local_size, profile.work_items))
    # lost lanes stretch the computed work; memory traffic is unchanged
    adjusted = replace(
        profile,
        flops=profile.flops / efficiency,
        int_ops=profile.int_ops / efficiency,
        work_groups=groups,
    )
    return kernel_time(spec, adjusted)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a local-size sweep for one kernel on one device."""

    device: str
    kernel: str
    best_local_size: int
    best_time_s: float
    sweep: dict  # local size -> modeled seconds

    @property
    def worst_time_s(self) -> float:
        """Slowest modeled time across the swept local sizes."""
        return max(self.sweep.values())

    @property
    def speedup_vs_worst(self) -> float:
        """How much tuning bought: worst over best modeled time."""
        return self.worst_time_s / self.best_time_s if self.best_time_s else 1.0

    def rows(self) -> list[dict]:
        """The sweep as printable table rows, best size marked."""
        return [
            {"local size": ls, "modeled ms": round(t * 1e3, 5),
             "best": "<-" if ls == self.best_local_size else ""}
            for ls, t in self.sweep.items()
        ]


def autotune(spec: DeviceSpec, profile: KernelProfile,
             candidates: tuple[int, ...] = CANDIDATE_LOCAL_SIZES
             ) -> TuningResult:
    """Sweep local sizes and pick the modeled minimum.

    Ties break toward the larger local size (fewer groups, matching
    what hand-tuned OpenCL codes pick).

    Parameters
    ----------
    spec : DeviceSpec
        The target device.
    profile : KernelProfile
        The kernel to tune.
    candidates : tuple of int, optional
        Local sizes to try; powers of two 1..1024 by default.  Sizes
        exceeding the device maximum or the kernel's NDRange are
        skipped; a degenerate single-work-item NDRange falls back to
        local size 1.

    Returns
    -------
    TuningResult
        The winning local size, its modeled time, and the full sweep.
    """
    sweep = {}
    for local in candidates:
        if local > MAX_WORK_GROUP_SIZE:
            continue
        if local > profile.work_items:
            continue
        sweep[local] = tuned_kernel_time(spec, profile, local).total_s
    if not sweep:
        # degenerate NDRange (single work item): only local=1 is valid
        sweep[1] = tuned_kernel_time(spec, profile, 1).total_s
    best = min(sorted(sweep, reverse=True), key=lambda ls: sweep[ls])
    return TuningResult(
        device=spec.name,
        kernel=profile.name,
        best_local_size=best,
        best_time_s=sweep[best],
        sweep=dict(sorted(sweep.items())),
    )


def autotune_benchmark(spec: DeviceSpec, bench) -> dict[str, TuningResult]:
    """Tune every kernel of a benchmark.

    Parameters
    ----------
    spec : DeviceSpec
        The target device.
    bench : Benchmark
        A sized benchmark instance; each of its kernel profiles is
        tuned independently.

    Returns
    -------
    dict of str to TuningResult
        One result per kernel, keyed by kernel name.
    """
    out = {}
    for profile in bench.profiles():
        out[profile.name] = autotune(spec, profile)
    return out
