"""Work-group size auto-tuning over the analytic model (paper §7)."""

from .autotune import (
    CANDIDATE_LOCAL_SIZES,
    TuningResult,
    alignment_efficiency,
    autotune,
    autotune_benchmark,
    scheduling_width,
    tuned_kernel_time,
)

__all__ = [
    "CANDIDATE_LOCAL_SIZES",
    "TuningResult",
    "alignment_efficiency",
    "autotune",
    "autotune_benchmark",
    "scheduling_width",
    "tuned_kernel_time",
]
