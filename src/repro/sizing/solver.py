"""Problem-size solver: fit scale parameters to a cache hierarchy.

Implements the paper's §4.4 procedure generically: given a reference
device (the Skylake i7-6700K in the paper), find for each benchmark

* ``tiny``   — the largest Φ whose footprint fits L1;
* ``small``  — the largest Φ fitting L2;
* ``medium`` — the largest Φ fitting L3 (the last-level cache);
* ``large``  — the smallest Φ at least ``LARGE_FACTOR`` x L3, "to
  ensure that data are transferred between main memory and cache".

"These can now be easily adjusted for next generation accelerator
systems using the methodology outlined in Section 4.4" (paper §6) —
pass any other device spec to retarget the suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.specs import DeviceSpec
from .footprint import SCALE_GENERATORS, footprint_for

#: ``large`` must exceed the last-level cache by at least this factor.
LARGE_FACTOR = 4

#: Safety cap on the number of candidate scales explored per level.
_MAX_CANDIDATES = 1_000_000


@dataclass(frozen=True)
class SizeSelection:
    """Solved scale parameters and their footprints for one benchmark."""

    benchmark: str
    device: str
    sizes: dict  # size name -> (phi, footprint_bytes)

    def phi(self, size: str):
        return self.sizes[size][0]

    def footprint(self, size: str) -> int:
        return self.sizes[size][1]


def solve_sizes(benchmark: str, device: DeviceSpec) -> SizeSelection:
    """Run the §4.4 methodology for one benchmark on one device."""
    try:
        generator = SCALE_GENERATORS[benchmark]
    except KeyError:
        raise ValueError(
            f"{benchmark!r} has no scale generator (fixed-size benchmark?)"
        ) from None

    thresholds = [level.size_bytes for level in device.caches]
    llc = thresholds[-1]
    large_minimum = LARGE_FACTOR * llc
    names = ["tiny", "small", "medium"][: len(thresholds)]

    best: dict[str, tuple] = {}
    large: tuple | None = None
    previous_fp = -1
    for i, phi in enumerate(generator()):
        if i >= _MAX_CANDIDATES:
            raise RuntimeError(
                f"{benchmark}: no scale reached {large_minimum} bytes after "
                f"{_MAX_CANDIDATES} candidates"
            )
        fp = footprint_for(benchmark, phi)
        if fp < previous_fp:
            raise RuntimeError(f"{benchmark}: footprint not monotone at {phi!r}")
        previous_fp = fp
        for name, limit in zip(names, thresholds):
            if fp <= limit:
                best[name] = (phi, fp)
        if fp >= large_minimum:
            large = (phi, fp)
            break
    missing = [n for n in names if n not in best]
    if missing:
        raise RuntimeError(
            f"{benchmark}: no scale fits cache level(s) {missing} on {device.name}"
        )
    best["large"] = large
    return SizeSelection(benchmark=benchmark, device=device.name, sizes=best)


def classify_footprint(device: DeviceSpec, footprint_bytes: int) -> str:
    """Which size class a footprint belongs to on a device.

    Returns 'tiny'/'small'/'medium' for the innermost cache level that
    holds it, or 'large' if it exceeds the last-level cache.
    """
    names = ["tiny", "small", "medium"]
    for name, level in zip(names, device.caches):
        if footprint_bytes <= level.size_bytes:
            return name
    return "large"
