"""Problem-size methodology: footprints, solver, presets, verification."""

from .footprint import (
    FIXED_SIZE_BENCHMARKS,
    SCALE_GENERATORS,
    footprint_for,
    footprint_kib,
)
from .presets import PAPER_TABLE2, REFERENCE_DEVICE, preset_fit_report
from .solver import LARGE_FACTOR, SizeSelection, classify_footprint, solve_sizes
from .verify import (
    SizeVerification,
    TRACE_LEN,
    transition_detected,
    verify_benchmark_sizes,
    verify_static_footprints,
)

__all__ = [
    "FIXED_SIZE_BENCHMARKS",
    "LARGE_FACTOR",
    "PAPER_TABLE2",
    "REFERENCE_DEVICE",
    "SCALE_GENERATORS",
    "SizeSelection",
    "SizeVerification",
    "TRACE_LEN",
    "classify_footprint",
    "footprint_for",
    "footprint_kib",
    "preset_fit_report",
    "solve_sizes",
    "transition_detected",
    "verify_benchmark_sizes",
    "verify_static_footprints",
]
