"""The paper's published problem sizes (Table 2) and their provenance.

``PAPER_TABLE2`` mirrors the publication exactly.  The benchmark
classes carry the same values in their ``presets`` attribute; the
consistency test guards against drift between the two.
"""

from __future__ import annotations

from ..devices.catalog import get_device
from ..dwarfs.registry import BENCHMARKS
from .solver import classify_footprint

#: Table 2: OpenDwarfs workload scale parameters Φ.
PAPER_TABLE2 = {
    "kmeans": {"tiny": 256, "small": 2048, "medium": 65600, "large": 131072},
    "lud": {"tiny": 80, "small": 240, "medium": 1440, "large": 4096},
    "csr": {"tiny": 736, "small": 2416, "medium": 14336, "large": 16384},
    "fft": {"tiny": 2048, "small": 16384, "medium": 524288, "large": 2097152},
    "dwt": {"tiny": (72, 54), "small": (200, 150), "medium": (1152, 864),
            "large": (3648, 2736)},
    "srad": {"tiny": (80, 16), "small": (128, 80), "medium": (1024, 336),
             "large": (2048, 1024)},
    "crc": {"tiny": 2000, "small": 16000, "medium": 524000, "large": 4194304},
    "nw": {"tiny": 48, "small": 176, "medium": 1008, "large": 4096},
    "gem": {"tiny": "4TUT", "small": "2D3V", "medium": "nucleosome",
            "large": "1KX5"},
    "nqueens": {"tiny": 18},
    "hmm": {"tiny": (8, 1), "small": (900, 1), "medium": (1012, 1024),
            "large": (2048, 2048)},
}

#: The reference platform the sizes were fitted to (paper §4.4).
REFERENCE_DEVICE = "i7-6700K"


def preset_fit_report(device_name: str = REFERENCE_DEVICE) -> dict:
    """Classify every Table 2 preset against a device's cache levels.

    Returns ``{benchmark: {size: (footprint_kib, fits_class)}}`` —
    the data behind the paper's claim that tiny/small/medium/large
    land in L1/L2/L3/memory on the Skylake.
    """
    device = get_device(device_name)
    report = {}
    for name, sizes in PAPER_TABLE2.items():
        cls = BENCHMARKS[name]
        per_size = {}
        for size, phi in sizes.items():
            fp = cls.from_scale(phi).footprint_bytes()
            per_size[size] = (fp / 1024.0, classify_footprint(device, fp))
        report[name] = per_size
    return report
