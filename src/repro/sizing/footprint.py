"""Working-set footprint computation per benchmark.

The paper's §4.4 methodology: each benchmark has a closed-form device
memory footprint in its scale parameter Φ (e.g. Eq. 1 for kmeans);
problem sizes are chosen so the footprint lands in the targeted level
of the reference CPU's cache hierarchy.

``footprint_for`` evaluates the footprint by instantiating the
benchmark (cheap — no host setup) so it is always consistent with what
the runtime will actually allocate.
"""

from __future__ import annotations

from ..dwarfs.registry import get_benchmark


def footprint_for(benchmark: str, phi) -> int:
    """Device footprint (bytes) of ``benchmark`` at scale ``phi``."""
    cls = get_benchmark(benchmark)
    return cls.from_scale(phi).footprint_bytes()


def footprint_kib(benchmark: str, phi) -> float:
    return footprint_for(benchmark, phi) / 1024.0


# ----------------------------------------------------------------------
# Scale-parameter generators: the discrete values each benchmark's Φ
# may take (monotonically increasing in footprint).
# ----------------------------------------------------------------------
def _kmeans_scales():
    p = 16
    while True:
        yield p
        p += 16


def _lud_scales():
    n = 16
    while True:
        yield n
        n += 16


def _csr_scales():
    n = 16
    while True:
        yield n
        n += 16


def _fft_scales():
    n = 64
    while True:
        yield n
        n *= 2


def _dwt_scales():
    # 4:3 aspect images, multiples of 4 in width
    w = 16
    while True:
        yield (w, max(w * 3 // 4, 8))
        w += 8


def _srad_scales():
    # grids roughly 2:1, row-dominant like the paper's choices
    r = 16
    while True:
        yield (r, max(r // 2, 8))
        r += 16


def _crc_scales():
    n = 1024
    while True:
        yield n
        n += 1024


def _nw_scales():
    n = 16
    while True:
        yield n
        n += 16


def _hmm_scales():
    n = 2
    while True:
        yield (n, 1)
        n += 2


SCALE_GENERATORS = {
    "kmeans": _kmeans_scales,
    "lud": _lud_scales,
    "csr": _csr_scales,
    "fft": _fft_scales,
    "dwt": _dwt_scales,
    "srad": _srad_scales,
    "crc": _crc_scales,
    "nw": _nw_scales,
    "hmm": _hmm_scales,
}

#: Benchmarks whose problem size could not be freely scaled in the
#: paper (gem uses fixed molecules; nqueens' footprint barely moves).
FIXED_SIZE_BENCHMARKS = ("gem", "nqueens")
