"""Counter-based verification of problem-size selection.

The paper verifies its sizes with PAPI cache counters: "cache miss
results ... were used to verify the selection of suitable problem
sizes for each benchmark" (§4.4) — a correctly-chosen *tiny* shows
negligible L1 misses after warm-up, *small* spills L1 but not L2, and
so on.  This module replays each benchmark's representative access
trace (see :meth:`Benchmark.access_trace`) through the cache simulator
of the reference device and reports the per-level miss rates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..counters.papi import CounterReport, PapiEventSet
from ..devices.catalog import get_device
from ..devices.specs import CacheLevel, DeviceSpec
from ..dwarfs.registry import get_benchmark

#: Trace length used for verification runs.
TRACE_LEN = 120_000


def scaled_spec(spec: DeviceSpec, factor: float) -> DeviceSpec:
    """A copy of ``spec`` with every cache level scaled by ``factor``.

    Trace subsampling (needed to keep verification fast for
    multi-megabyte footprints) touches only a fraction of the working
    set's cache lines; scaling the simulated hierarchy by the same
    fraction preserves the capacity relationship — the standard
    scaled-simulation technique.  Shared with the per-cell counter
    replay in :mod:`repro.harness.artifacts`.
    """
    if factor >= 1.0:
        return spec
    levels = tuple(
        dataclasses.replace(
            level,
            size_kib=max(int(level.size_kib * factor),
                         level.line_bytes * level.associativity // 1024 + 1),
        )
        for level in spec.caches
    )
    return dataclasses.replace(spec, caches=levels)


def touched_bytes(trace: np.ndarray, line_bytes: int = 64) -> int:
    """Distinct cache-line bytes a trace actually exercises."""
    if len(trace) == 0:
        return 0
    return len(np.unique(trace // line_bytes)) * line_bytes


# Former private names, kept as aliases for existing callers/tests.
_scaled_spec = scaled_spec
_touched_bytes = touched_bytes


@dataclass(frozen=True)
class SizeVerification:
    """Counter results per problem size for one benchmark."""

    benchmark: str
    device: str
    reports: dict  # size -> CounterReport

    def miss_percent(self, size: str, counter: str) -> float:
        """Misses as a percentage of total instructions (paper §4.4)."""
        return 100.0 * self.reports[size].rate(counter)

    def summary_rows(self) -> list[dict]:
        rows = []
        for size, report in self.reports.items():
            rows.append({
                "size": size,
                "L1 miss %": round(100 * report.rate("PAPI_L1_DCM"), 3),
                "L2 miss %": round(100 * report.rate("PAPI_L2_DCM"), 3),
                "L3 miss %": round(100 * report.rate("PAPI_L3_TCM"), 3),
                "TLB miss %": round(100 * report.rate("PAPI_TLB_DM"), 3),
            })
        return rows


def verify_benchmark_sizes(
    benchmark: str,
    device: DeviceSpec | str = "i7-6700K",
    sizes: tuple[str, ...] | None = None,
    trace_len: int = TRACE_LEN,
) -> SizeVerification:
    """Replay a benchmark's trace per size through the cache simulator.

    The trace provenance honours ``REPRO_TRACE_SOURCE``: hand-authored
    trace specs by default, IR-synthesised traces from the static
    launch model with ``REPRO_TRACE_SOURCE=ir``.
    """
    from ..analysis.accessmodel import resolve_access_trace

    spec = get_device(device) if isinstance(device, str) else device
    cls = get_benchmark(benchmark)
    sizes = sizes or cls.available_sizes()
    reports: dict[str, CounterReport] = {}
    for size in sizes:
        bench = cls.from_size(size)
        trace = resolve_access_trace(bench, max_len=trace_len)
        footprint = max(bench.footprint_bytes(), 1)
        factor = min(1.0, touched_bytes(trace) / footprint)
        events = PapiEventSet(scaled_spec(spec, factor))
        events.start()
        events.record_memory_trace(trace)
        reports[size] = events.stop()
    return SizeVerification(benchmark=benchmark, device=spec.name, reports=reports)


def verify_static_footprints(
    benchmark: str, sizes: tuple[str, ...] | None = None
) -> dict:
    """Cross-check symbolic working sets against ``footprint_bytes()``.

    The analytic complement of the cache-counter replay above: for each
    size preset, the benchmark's static launch model is abstractly
    interpreted (:mod:`repro.analysis.absint`) and the derived
    working-set bytes are compared with the runtime footprint formula.
    Returns ``{size: FootprintComparison}``; benchmarks without a
    static launch model yield an empty mapping.
    """
    from ..analysis.absint import verify_benchmark_footprint

    cls = get_benchmark(benchmark)
    sizes = sizes or cls.available_sizes()
    out: dict = {}
    for size in sizes:
        comparison = verify_benchmark_footprint(benchmark, size)
        if comparison is not None:
            out[size] = comparison
    return out


def transition_detected(verification: SizeVerification, level: str,
                        smaller: str, larger: str, factor: float = 2.0) -> bool:
    """Whether a cache level's miss rate jumps between two sizes.

    The signature of a correct size selection: moving from the size
    that fits a level to the one that spills it multiplies the level's
    miss rate.
    """
    lo = verification.reports[smaller].rate(level)
    hi = verification.reports[larger].rate(level)
    if lo <= 0:
        return hi > 0
    return hi >= factor * lo
