"""Synthetic biomolecular structures for the gem benchmark.

The paper feeds gem with molecules from the NCBI MMDB, converted to
pqr (atom position/charge/radius) format with ``pdb2pqr`` and
triangulated into solvent-excluded surfaces with ``msms`` (§4.4.4).
Neither the database nor those tools exist here, so this module
generates synthetic molecules whose *device-side memory footprints
match the paper's reported values* for each dataset:

=========  =========================  ==============  ==========
size       paper dataset              footprint       molecules
=========  =========================  ==============  ==========
tiny       Prion Peptide 4TUT         31.3 KiB        1 protein
small      Leukocyte Receptor 2D3V    252 KiB         1 protein
medium     nucleosome (OpenDwarfs)    7 498 KiB       —
large      Nucleosome Core 1KX5       10 970.2 KiB    28
=========  =========================  ==============  ==========

gem's kernel consumes exactly two arrays — atoms (x, y, z, charge) and
surface vertices (x, y, z, potential-out) — so matching counts and
footprints preserves the performance-relevant structure.  Atoms are
placed in globular clusters (residue blobs); vertices are distributed
on a molecular-surface-like sphere around them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bytes per atom record on the device: x, y, z, charge (fp32).
ATOM_BYTES = 16
#: Bytes per surface vertex: x, y, z (fp32) + output potential (fp32).
VERTEX_BYTES = 16


@dataclass(frozen=True)
class MoleculeSpec:
    """Named dataset with target atom/vertex counts."""

    name: str
    description: str
    n_atoms: int
    n_vertices: int

    @property
    def footprint_bytes(self) -> int:
        return self.n_atoms * ATOM_BYTES + self.n_vertices * VERTEX_BYTES

    @property
    def footprint_kib(self) -> float:
        return self.footprint_bytes / 1024.0


def _counts_for_footprint(total_kib: float, vertex_ratio: float = 4.0) -> tuple[int, int]:
    """Atom/vertex counts whose footprint is ``total_kib``.

    msms produces several surface vertices per atom; ``vertex_ratio``
    fixes vertices = ratio x atoms.
    """
    total = total_kib * 1024.0
    atoms = int(round(total / (ATOM_BYTES + vertex_ratio * VERTEX_BYTES)))
    vertices = int(round((total - atoms * ATOM_BYTES) / VERTEX_BYTES))
    return max(atoms, 1), max(vertices, 1)


def _make_spec(name: str, description: str, footprint_kib: float) -> MoleculeSpec:
    atoms, vertices = _counts_for_footprint(footprint_kib)
    return MoleculeSpec(name=name, description=description,
                        n_atoms=atoms, n_vertices=vertices)


#: The four gem datasets keyed by the Table 2 scale parameter.
MOLECULES: dict[str, MoleculeSpec] = {
    "4TUT": _make_spec(
        "4TUT", "Prion peptide, 1 protein molecule (tiny)", 31.3),
    "2D3V": _make_spec(
        "2D3V", "Leukocyte receptor LILRA5, 1 protein molecule (small)", 252.0),
    "nucleosome": _make_spec(
        "nucleosome", "OpenDwarfs nucleosome dataset (medium)", 7498.0),
    "1KX5": _make_spec(
        "1KX5", "Nucleosome core particle: 8 protein, 2 nucleotide, "
        "18 chemical molecules (large)", 10970.2),
}


@dataclass
class Molecule:
    """Generated structure: atom records plus surface vertices."""

    spec: MoleculeSpec
    atoms: np.ndarray      # (n_atoms, 4) float32: x, y, z, charge
    vertices: np.ndarray   # (n_vertices, 3) float32: x, y, z

    @property
    def footprint_bytes(self) -> int:
        return self.atoms.nbytes + self.vertices.nbytes + self.spec.n_vertices * 4


def generate(spec_or_name: MoleculeSpec | str, seed: int = 4242) -> Molecule:
    """Generate a synthetic molecule for a dataset spec.

    Atoms are sampled from a mixture of gaussian "residue" blobs with
    partial charges in [-1, 1] summing to ~0 (as pdb2pqr assigns);
    vertices sit on a noisy ellipsoidal shell around the atom cloud
    (the solvent-excluded surface msms would produce).
    """
    spec = MOLECULES[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    rng = np.random.default_rng(seed + hash(spec.name) % 100_000)

    n_blobs = max(1, spec.n_atoms // 120)
    centers = rng.normal(0.0, 12.0, size=(n_blobs, 3))
    which = rng.integers(0, n_blobs, size=spec.n_atoms)
    positions = centers[which] + rng.normal(0.0, 3.0, size=(spec.n_atoms, 3))
    charges = rng.uniform(-1.0, 1.0, size=spec.n_atoms)
    charges -= charges.mean()  # near-neutral molecule
    atoms = np.concatenate([positions, charges[:, None]], axis=1).astype(np.float32)

    # Surface shell: unit directions scaled past the atom radius.
    directions = rng.normal(size=(spec.n_vertices, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    extent = np.abs(positions).max() + 4.0
    radii = extent * rng.uniform(1.0, 1.15, size=(spec.n_vertices, 1))
    vertices = (directions * radii).astype(np.float32)

    return Molecule(spec=spec, atoms=atoms, vertices=vertices)


def to_pqr(molecule: Molecule) -> str:
    """Render the atoms in pqr text format (as pdb2pqr emits).

    Radius is a constant van-der-Waals stand-in; gem does not read it.
    """
    lines = []
    for i, (x, y, z, q) in enumerate(molecule.atoms, start=1):
        lines.append(
            f"ATOM  {i:5d}  C   RES A{(i - 1) // 8 + 1:4d}    "
            f"{x:8.3f}{y:8.3f}{z:8.3f} {q:7.4f} {1.7:6.4f}"
        )
    lines.append("END")
    return "\n".join(lines) + "\n"


def from_pqr(text: str, spec: MoleculeSpec | None = None) -> np.ndarray:
    """Parse pqr text back to an (n, 4) atom array."""
    rows = []
    for line in text.splitlines():
        if line.startswith(("ATOM", "HETATM")):
            x = float(line[30:38])
            y = float(line[38:46])
            z = float(line[46:54])
            q = float(line[54:62])
            rows.append((x, y, z, q))
    return np.asarray(rows, dtype=np.float32)
