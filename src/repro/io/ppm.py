"""Portable PixMap / GrayMap codec.

The dwt benchmark was "extended to support loading of Portable PixMap
(.ppm) and Portable GrayMap (.pgm) image formats, and storing Portable
GrayMap images of the resulting DWT coefficients in a visual tiled
fashion" (paper §4.4.3).  This module implements the binary (P5/P6)
and ASCII (P2/P3) variants over numpy arrays.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

import numpy as np

_MAGIC_TO_KIND = {b"P2": ("pgm", False), b"P3": ("ppm", False),
                  b"P5": ("pgm", True), b"P6": ("ppm", True)}


class PNMError(ValueError):
    """Malformed PNM data."""


def _read_tokens(data: bytes, count: int, pos: int) -> tuple[list[int], int]:
    """Read ``count`` whitespace-separated integers, skipping comments."""
    tokens: list[int] = []
    while len(tokens) < count:
        # skip whitespace and comment lines
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if pos < len(data) and data[pos : pos + 1] == b"#":
            eol = data.find(b"\n", pos)
            pos = len(data) if eol == -1 else eol + 1
            continue
        match = re.match(rb"\d+", data[pos:])
        if not match:
            raise PNMError(f"expected integer at byte {pos}")
        tokens.append(int(match.group()))
        pos += match.end()
    return tokens, pos


def loads(data: bytes) -> np.ndarray:
    """Decode PNM bytes to an array: (h, w) for PGM, (h, w, 3) for PPM."""
    magic = data[:2]
    if magic not in _MAGIC_TO_KIND:
        raise PNMError(f"not a supported PNM format: magic {magic!r}")
    kind, binary = _MAGIC_TO_KIND[magic]
    (width, height, maxval), pos = _read_tokens(data, 3, 2)
    if maxval <= 0 or maxval > 65535:
        raise PNMError(f"invalid maxval {maxval}")
    channels = 3 if kind == "ppm" else 1
    n_values = width * height * channels
    dtype = np.dtype(np.uint8) if maxval < 256 else np.dtype(">u2")
    if binary:
        pos += 1  # single whitespace after maxval
        raw = data[pos : pos + n_values * dtype.itemsize]
        if len(raw) != n_values * dtype.itemsize:
            raise PNMError(
                f"truncated raster: expected {n_values * dtype.itemsize} bytes, "
                f"got {len(raw)}"
            )
        values = np.frombuffer(raw, dtype=dtype).astype(np.uint16 if maxval >= 256 else np.uint8)
    else:
        ints, _ = _read_tokens(data, n_values, pos)
        values = np.asarray(ints, dtype=np.uint16 if maxval >= 256 else np.uint8)
    shape = (height, width) if channels == 1 else (height, width, 3)
    return values.reshape(shape)


def dumps(image: np.ndarray, binary: bool = True, maxval: int = 255) -> bytes:
    """Encode an image array as PGM (2-D) or PPM (3-D, 3 channels)."""
    image = np.asarray(image)
    if image.ndim == 2:
        magic = b"P5" if binary else b"P2"
        h, w = image.shape
    elif image.ndim == 3 and image.shape[2] == 3:
        magic = b"P6" if binary else b"P3"
        h, w = image.shape[:2]
    else:
        raise PNMError(f"cannot encode array of shape {image.shape}")
    if image.min() < 0 or image.max() > maxval:
        raise PNMError(f"pixel values outside [0, {maxval}]")
    header = b"%s\n%d %d\n%d\n" % (magic, w, h, maxval)
    flat = image.astype(np.uint8 if maxval < 256 else np.dtype(">u2")).reshape(-1)
    if binary:
        return header + flat.tobytes()
    body = io.StringIO()
    for i, v in enumerate(flat.tolist()):
        body.write(f"{v}")
        body.write("\n" if (i + 1) % 16 == 0 else " ")
    return header + body.getvalue().rstrip().encode() + b"\n"


def load(path) -> np.ndarray:
    """Read a .ppm/.pgm file."""
    return loads(Path(path).read_bytes())


def save(path, image: np.ndarray, binary: bool = True, maxval: int = 255) -> None:
    """Write an image array to a .ppm/.pgm file."""
    Path(path).write_bytes(dumps(image, binary=binary, maxval=maxval))


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Luma conversion (Rec. 601) for RGB images; pass-through for gray."""
    if image.ndim == 2:
        return image
    weights = np.array([0.299, 0.587, 0.114])
    return (image[..., :3].astype(np.float64) @ weights).round().astype(image.dtype)
