"""Data generation and file IO: PNM images, molecules, CSR matrices."""

from . import csrfile, images, molecules, ppm

__all__ = ["csrfile", "images", "molecules", "ppm"]
