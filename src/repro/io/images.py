"""Synthetic test images and resampling.

The paper's dwt input is a 3648x2736 photograph of a gum leaf,
down-sampled with ImageMagick to the smaller problem sizes (§4.4.3).
We have no photograph, so :func:`gum_leaf` synthesises a leaf-like
image — an elliptical blade with veins and background texture — whose
statistics (smooth regions + oriented edges) exercise a wavelet
transform the same way, and :func:`resize_box` stands in for
ImageMagick's resize.
"""

from __future__ import annotations

import functools

import numpy as np

#: Native resolution of the paper's gum-leaf photograph.
NATIVE_SIZE = (3648, 2736)  # (width, height)


def gum_leaf(width: int, height: int, seed: int = 20180510) -> np.ndarray:
    """Generate a leaf-like grayscale image of the given size.

    Deterministic for a given (size, seed): an elliptical leaf blade on
    a textured background, a midrib and lateral veins, plus mild sensor
    noise.  Values are uint8.  Results are memoised (generation of the
    native-size master costs ~2 s); callers receive a fresh copy.
    """
    return _gum_leaf_cached(width, height, seed).copy()


@functools.lru_cache(maxsize=8)
def _gum_leaf_cached(width: int, height: int, seed: int) -> np.ndarray:
    if width <= 0 or height <= 0:
        raise ValueError(f"image size must be positive, got {width}x{height}")
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:height, 0:width]
    # normalised coordinates centred on the leaf, slightly rotated
    u = (x - width * 0.5) / (width * 0.42)
    v = (y - height * 0.5) / (height * 0.36)
    theta = 0.35
    ur = u * np.cos(theta) - v * np.sin(theta)
    vr = u * np.sin(theta) + v * np.cos(theta)
    # leaf blade: ellipse tapered toward the tip
    blade = (ur**2 + (vr * (1.3 + 0.45 * ur)) ** 2) < 1.0
    image = np.full((height, width), 190.0)
    # background texture (paper/table surface)
    image += 12.0 * np.sin(x * 0.11) * np.cos(y * 0.07)
    # blade body darker, with chlorophyll gradient
    image[blade] = 95.0 + 28.0 * ur[blade]
    # midrib along the leaf axis
    midrib = blade & (np.abs(vr) < 0.035)
    image[midrib] = 150.0
    # lateral veins branching from the midrib
    veins = blade & (np.abs(np.sin(ur * 18.0) * 0.5 - vr) < 0.03)
    image[veins] = 135.0
    image += rng.normal(0.0, 2.0, size=image.shape)
    return np.clip(image, 0, 255).astype(np.uint8)


def resize_box(image: np.ndarray, width: int, height: int) -> np.ndarray:
    """Box-filter resample to (height, width) — ImageMagick-style resize.

    Works for both down- and up-sampling by averaging the source pixels
    each destination pixel covers (nearest source pixel when
    upsampling).
    """
    if width <= 0 or height <= 0:
        raise ValueError(f"target size must be positive, got {width}x{height}")
    src_h, src_w = image.shape[:2]
    # Box boundaries per output pixel; degenerate boxes (upsampling)
    # are widened to one source pixel.
    y_edges = np.linspace(0, src_h, height + 1).astype(np.int64)
    x_edges = np.linspace(0, src_w, width + 1).astype(np.int64)
    y0, y1 = y_edges[:-1], np.maximum(y_edges[1:], y_edges[:-1] + 1)
    x0, x1 = x_edges[:-1], np.maximum(x_edges[1:], x_edges[:-1] + 1)
    # Summed-area table: box sums become four lookups, fully vectorised.
    img = image.astype(np.float64)
    sat = np.zeros((src_h + 1, src_w + 1) + img.shape[2:], dtype=np.float64)
    sat[1:, 1:] = img.cumsum(axis=0).cumsum(axis=1)
    totals = (
        sat[np.ix_(y1, x1)] - sat[np.ix_(y0, x1)]
        - sat[np.ix_(y1, x0)] + sat[np.ix_(y0, x0)]
    )
    areas = ((y1 - y0)[:, None] * (x1 - x0)[None, :]).astype(np.float64)
    if totals.ndim == 3:
        areas = areas[..., None]
    out = totals / areas
    return np.clip(np.round(out), 0, 255).astype(image.dtype)


def gum_leaf_at_scale(width: int, height: int, seed: int = 20180510) -> np.ndarray:
    """The leaf image at a target problem size.

    For the native (large) size the image is generated directly; for
    smaller sizes a moderate-resolution master is generated and
    box-resampled, mirroring the paper's ImageMagick pipeline while
    keeping generation cheap.
    """
    if (width, height) == NATIVE_SIZE:
        return gum_leaf(width, height, seed)
    # master at 4x the target (capped) mimics downsampling a photograph
    master_w = min(width * 4, NATIVE_SIZE[0])
    master_h = min(height * 4, NATIVE_SIZE[1])
    master = gum_leaf(master_w, master_h, seed)
    return resize_box(master, width, height)
