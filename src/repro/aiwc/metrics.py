"""Architecture-Independent Workload Characterization (AIWC).

The paper's §7: "Each OpenCL kernel presented in this paper has been
inspected using the Architecture Independent Workload Characterization
(AIWC).  Analysis using AIWC helps understand how the structure of
kernels contributes to the varying runtime characteristics between
devices."  This module implements that characterization over our
kernel profiles and access traces: a vector of architecture-independent
metrics per benchmark, grouped the way AIWC groups them (compute,
parallelism, memory, control).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

import numpy as np

from ..dwarfs.base import Benchmark
from ..perfmodel.characterization import KernelProfile


@dataclass(frozen=True)
class AIWCMetrics:
    """One benchmark's architecture-independent feature vector.

    Compute
    -------
    opcode_total:
        Total operations per iteration (fp + int + chain), log10.
    fp_fraction:
        Share of floating-point among all operations.
    arithmetic_intensity:
        FLOPs per byte of unique traffic (roofline x-coordinate).

    Parallelism
    -----------
    work_items_log:
        log10 of the widest kernel's NDRange.
    granularity:
        Operations per work item (barrier-free work between
        synchronisation points), log10.
    serial_fraction:
        Share of operations on serial/chain critical paths — the
        Amdahl term that penalises wide devices.
    launch_intensity:
        Kernel launches per iteration, log10 (wavefront codes score
        high; single-kernel codes score 0).

    Memory
    ------
    memory_entropy:
        Shannon entropy (bits) of the access-pattern mix — 0 for pure
        streaming, up to log2(3) for an even seq/strided/random blend.
    unique_footprint_log:
        log10 of the device-side working set.

    Control
    -------
    branch_fraction:
        Share of operations behind data-dependent branches.
    """

    benchmark: str
    dwarf: str
    opcode_total: float
    fp_fraction: float
    arithmetic_intensity: float
    work_items_log: float
    granularity: float
    serial_fraction: float
    launch_intensity: float
    memory_entropy: float
    unique_footprint_log: float
    branch_fraction: float

    NUMERIC_FIELDS = (
        "opcode_total", "fp_fraction", "arithmetic_intensity",
        "work_items_log", "granularity", "serial_fraction",
        "launch_intensity", "memory_entropy", "unique_footprint_log",
        "branch_fraction",
    )

    def vector(self) -> np.ndarray:
        """The metrics as a plain feature vector (fixed field order).

        Degenerate metrics (an ``inf`` arithmetic intensity from a
        zero-byte profile, a NaN from an empty trace) are mapped to
        0.0 so downstream distance math stays finite.
        """
        raw = np.array([float(getattr(self, f)) for f in self.NUMERIC_FIELDS])
        return np.nan_to_num(raw, nan=0.0, posinf=0.0, neginf=0.0)

    def as_row(self) -> dict[str, object]:
        """JSON-ready mapping of the vector plus identity columns."""
        row: dict[str, object] = {
            "benchmark": self.benchmark, "dwarf": self.dwarf}
        row.update({f: round(float(v), 3)
                    for f, v in zip(self.NUMERIC_FIELDS, self.vector())})
        return row


def pattern_entropy_from_weights(weights: object) -> float:
    """Shannon entropy (bits) of a non-negative weight vector.

    The guard against degenerate inputs lives here so both the dynamic
    and the static characterization share it: non-finite or negative
    weights are dropped (an empty trace or zero-footprint cell yields
    no information, not NaN), an all-zero vector scores 0.0, and the
    result is bounded by ``log2(len(weights))``.
    """
    arr = np.asarray(weights, dtype=float).ravel()
    arr = arr[np.isfinite(arr) & (arr > 0)]
    total = arr.sum()
    if total <= 0 or not np.isfinite(total):
        return 0.0
    probs = arr / total
    # a weight can underflow to probability 0 against a huge total;
    # 0 * log2(0) would be NaN, but its information content is 0
    probs = probs[probs > 0]
    # + 0.0 normalises the -0.0 a single-class mix produces
    return float(-(probs * np.log2(probs)).sum()) + 0.0


def _pattern_entropy(profiles: list[KernelProfile]) -> float:
    """Traffic-weighted Shannon entropy of the access-pattern mix."""
    weights = np.zeros(3)
    for p in profiles:
        traffic = p.bytes_total * p.launches
        if not math.isfinite(traffic) or traffic <= 0:
            continue
        weights += traffic * np.array(
            [p.seq_fraction, p.strided_fraction, p.random_fraction])
    return pattern_entropy_from_weights(weights)


def characterize(bench: Benchmark) -> AIWCMetrics:
    """Compute the AIWC feature vector for a benchmark instance."""
    profiles = bench.profiles()
    if not profiles:
        raise ValueError(f"{bench.name}: no kernel profiles to characterise")

    flops = sum(p.flops * p.launches for p in profiles)
    int_ops = sum(p.int_ops * p.launches for p in profiles)
    chain = sum(p.chain_ops * p.work_items * p.launches for p in profiles)
    serial = sum(p.serial_ops * p.launches for p in profiles) + chain
    total_ops = flops + int_ops + chain
    bytes_total = sum(p.bytes_total * p.launches for p in profiles)
    launches = sum(p.launches for p in profiles)
    max_items = max(p.work_items for p in profiles)

    branch = 0.0
    if total_ops > 0:
        branch = sum(
            p.branch_fraction * (p.flops + p.int_ops + p.chain_ops) * p.launches
            for p in profiles
        ) / max(total_ops, 1.0)

    return AIWCMetrics(
        benchmark=bench.name,
        dwarf=bench.dwarf,
        opcode_total=math.log10(max(total_ops, 1.0)),
        fp_fraction=flops / total_ops if total_ops else 0.0,
        arithmetic_intensity=flops / bytes_total if bytes_total else 0.0,
        work_items_log=math.log10(max(max_items, 1)),
        granularity=math.log10(max(total_ops / max(max_items * launches, 1), 1.0)),
        serial_fraction=min(serial / total_ops, 1.0) if total_ops else 0.0,
        launch_intensity=math.log10(max(launches, 1)),
        memory_entropy=_pattern_entropy(profiles),
        unique_footprint_log=math.log10(max(bench.footprint_bytes(), 1)),
        branch_fraction=float(branch),
    )


def characterize_suite(size: str = "large") -> list[AIWCMetrics]:
    """Characterise every benchmark at a problem size (fallback: the
    largest size the benchmark supports)."""
    from ..dwarfs.registry import BENCHMARKS

    out = []
    for cls in BENCHMARKS.values():
        use = size if size in cls.presets else cls.available_sizes()[-1]
        out.append(characterize(cls.from_size(use)))
    return out
