"""Suite diversity analysis over AIWC feature vectors.

The original OpenDwarfs work justified each benchmark "with a thorough
diversity analysis" (paper §2).  We reproduce that: standardise the
AIWC feature vectors, compute the pairwise distance matrix, and report

* the most similar and most distinct benchmark pairs,
* a minimum-spanning-tree view of the suite (which benchmarks bridge
  which regions of workload space), and
* a per-benchmark distinctiveness score (distance to nearest
  neighbour) — a benchmark adds diversity if nothing else is close.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .metrics import AIWCMetrics


@dataclass(frozen=True)
class DiversityReport:
    """Pairwise structure of the suite in AIWC feature space."""

    names: tuple[str, ...]
    distances: np.ndarray          # (n, n) standardised euclidean
    nearest: dict                  # name -> (other, distance)
    mst_edges: tuple               # ((a, b, distance), ...)

    def distance(self, a: str, b: str) -> float:
        i, j = self.names.index(a), self.names.index(b)
        return float(self.distances[i, j])

    def most_similar_pair(self) -> tuple[str, str, float]:
        d = self.distances.copy()
        np.fill_diagonal(d, np.inf)
        i, j = np.unravel_index(np.argmin(d), d.shape)
        return self.names[i], self.names[j], float(d[i, j])

    def most_distinct(self) -> tuple[str, float]:
        """The benchmark farthest from its nearest neighbour."""
        name, (_, dist) = max(self.nearest.items(), key=lambda kv: kv[1][1])
        return name, dist

    def distinctiveness_rows(self) -> list[dict]:
        return [
            {"benchmark": name, "nearest": other,
             "distance": round(dist, 3)}
            for name, (other, dist) in sorted(
                self.nearest.items(), key=lambda kv: -kv[1][1])
        ]


def standardize(vectors: np.ndarray) -> np.ndarray:
    """Z-score each feature; constant features map to zero.

    Non-finite inputs (an ``inf`` intensity, a NaN from an empty
    trace) are treated as zero so one degenerate benchmark cannot
    poison every pairwise distance.
    """
    vectors = np.nan_to_num(np.asarray(vectors, dtype=float),
                            nan=0.0, posinf=0.0, neginf=0.0)
    mean = vectors.mean(axis=0)
    std = vectors.std(axis=0)
    std[std == 0] = 1.0
    return (vectors - mean) / std


def analyze(metrics: list[AIWCMetrics]) -> DiversityReport:
    """Build the diversity report for a set of characterised benchmarks."""
    if len(metrics) < 2:
        raise ValueError("diversity analysis needs at least two benchmarks")
    names = tuple(m.benchmark for m in metrics)
    z = standardize(np.stack([m.vector() for m in metrics]))
    diff = z[:, None, :] - z[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=2))

    nearest = {}
    for i, name in enumerate(names):
        row = distances[i].copy()
        row[i] = np.inf
        j = int(np.argmin(row))
        nearest[name] = (names[j], float(row[j]))

    graph = nx.Graph()
    for i, a in enumerate(names):
        for j in range(i + 1, len(names)):
            graph.add_edge(a, names[j], weight=float(distances[i, j]))
    mst = nx.minimum_spanning_tree(graph)
    mst_edges = tuple(sorted(
        (a, b, round(d["weight"], 3)) for a, b, d in mst.edges(data=True)
    ))

    return DiversityReport(names=names, distances=distances,
                           nearest=nearest, mst_edges=mst_edges)
