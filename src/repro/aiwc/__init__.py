"""AIWC: architecture-independent workload characterization (paper §7)."""

from .diversity import DiversityReport, analyze, standardize
from .metrics import AIWCMetrics, characterize, characterize_suite

__all__ = [
    "AIWCMetrics",
    "DiversityReport",
    "analyze",
    "characterize",
    "characterize_suite",
    "standardize",
]
