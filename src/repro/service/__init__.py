"""Benchmark-as-a-service: job queue, wire protocol, shared stores.

The ROADMAP's "benchmark-as-a-service" layer: a long-running asyncio
server (``repro serve``) over the sweep engine, accepting cell and
matrix requests from many concurrent clients with in-flight
deduplication, LPT/priority scheduling and queue-depth backpressure;
a pluggable cache backend so multiple workers and hosts share one
content-addressed result store; and an auto-updating results board
fed from the trajectory plus served-job history.

This ``__init__`` exports only the light, dependency-minimal pieces
(the wire protocol and the storage backends, which
``repro.harness.sweep`` itself builds on).  The heavier server-side
modules are imported on demand::

    from repro.service.jobs import ServiceEngine
    from repro.service.server import BenchService, run_server
    from repro.service.client import ServiceClient
    from repro.service.board import render_board
"""

from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_record,
    encode_record,
    validate_request,
)
from .store import (
    CacheBackend,
    CacheBackendError,
    LocalCacheBackend,
    RemoteCacheBackend,
    parse_backend_spec,
)

__all__ = [
    "CacheBackend",
    "CacheBackendError",
    "LocalCacheBackend",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteCacheBackend",
    "decode_record",
    "encode_record",
    "parse_backend_spec",
    "validate_request",
]
