"""Pluggable cache backends for the sweep result store.

:class:`~repro.harness.sweep.SweepCache` used to *be* a directory of
files; the benchmark service needs the same content-addressed store to
be shareable between workers and hosts, so the storage mechanics are
extracted here behind a minimal byte-oriented protocol:

* :class:`CacheBackend` — the contract: opaque blobs addressed by
  ``(kind, key)`` where ``kind`` is ``"result"`` (per-cell
  :class:`~repro.harness.runner.RunResult` entries) or ``"artifact"``
  (per-shape analysis artifacts) and ``key`` is the SHA-256
  content address.  Backends move bytes; *encoding* (npz layout,
  format stamps, corruption handling) stays in ``SweepCache`` so every
  backend serves byte-identical entries.
* :class:`LocalCacheBackend` — the on-disk layout: sharded
  ``<root>/<key[:2]>/<key>.npz`` entries (``docs/formats.md``) with
  atomic writes, plus transparent reads of the two legacy layouts
  (sharded ``<key[:2]>/<key>.json`` and flat ``<key>.json``).
* :class:`RemoteCacheBackend` — a client of a ``repro serve
  --cache-only`` instance, so multiple worker hosts share one store
  (the GEMMbench collaborative-repository topology).  Stateless: one
  short-lived TCP connection per operation, which keeps it trivially
  robust to server restarts.

``parse_backend_spec`` maps the CLI's ``--cache-dir`` argument to a
backend: ``remote://host:port`` goes remote, anything else is a local
path.
"""

from __future__ import annotations

import os
import socket
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from .protocol import (
    CACHE_KINDS,
    ProtocolError,
    blob_from_wire,
    blob_to_wire,
    decode_record,
    encode_record,
)


class CacheBackendError(OSError):
    """A backend operation failed (I/O, network, or protocol trouble).

    ``SweepCache`` treats read failures as misses, so a flaky remote
    store degrades to recomputation, never to a crash.
    """


def _check_kind(kind: str) -> str:
    if kind not in CACHE_KINDS:
        raise ValueError(f"unknown cache kind {kind!r} "
                         f"(expected one of {CACHE_KINDS})")
    return kind


@runtime_checkable
class CacheBackend(Protocol):
    """What a sweep-cache storage backend must provide.

    All methods address opaque blobs by ``(kind, key)``.  ``read``
    returns ``None`` on a plain miss and raises
    :class:`CacheBackendError` on infrastructure failure; callers that
    want miss-on-failure semantics catch the latter.
    """

    def read(self, kind: str, key: str) -> bytes | None:
        """The blob for ``(kind, key)``, or ``None`` when absent."""
        ...

    def write(self, kind: str, key: str, blob: bytes) -> None:
        """Store ``blob`` under ``(kind, key)``, atomically."""
        ...

    def keys(self, kind: str) -> list[str]:
        """Every key currently stored under ``kind`` (sorted)."""
        ...

    def delete(self, kind: str, key: str) -> bool:
        """Remove one entry; returns whether it existed."""
        ...

    def describe(self) -> str:
        """Human-readable location (shown in sweep summaries)."""
        ...


# ----------------------------------------------------------------------
# Local filesystem backend
# ----------------------------------------------------------------------
class LocalCacheBackend:
    """Sharded on-disk blob store (the default backend).

    Canonical entry paths::

        result   <root>/<key[:2]>/<key>.npz
        artifact <root>/analysis/<key[:2]>/<key>.npz

    ``read`` additionally consults the legacy *result* layouts written
    by earlier releases — sharded ``<key[:2]>/<key>.json`` and flat
    ``<key>.json`` — so an existing cache keeps serving hits across
    the layout change; new writes always use the npz layout.

    Writes are atomic: parent directories are created race-tolerantly
    (``exist_ok=True`` — two processes sharing a store may shard
    concurrently), the blob lands in a temp file, and ``os.replace``
    publishes it.  A reader can therefore never observe a torn entry
    under this backend; torn *content* (e.g. a file truncated by a
    crashed legacy writer or a full disk) is the decoder's to treat as
    a miss.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str) -> Path:
        """The canonical (npz) path for ``(kind, key)``."""
        _check_kind(kind)
        base = self.root / "analysis" if kind == "artifact" else self.root
        return base / key[:2] / f"{key}.npz"

    def legacy_paths(self, kind: str, key: str) -> list[Path]:
        """Older result layouts consulted on read, newest first."""
        if kind != "result":
            return []
        return [self.root / key[:2] / f"{key}.json",
                self.root / f"{key}.json"]

    # ------------------------------------------------------------------
    def read(self, kind: str, key: str) -> bytes | None:
        for path in (self.path_for(kind, key), *self.legacy_paths(kind, key)):
            try:
                return path.read_bytes()
            except FileNotFoundError:
                continue
            except OSError as exc:
                raise CacheBackendError(
                    f"cannot read cache entry {path}: {exc}") from exc
        return None

    def write(self, kind: str, key: str, blob: bytes) -> None:
        path = self.path_for(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError as exc:
            raise CacheBackendError(
                f"cannot write cache entry {path}: {exc}") from exc

    def keys(self, kind: str) -> list[str]:
        _check_kind(kind)
        return sorted({path.stem for path in self._entry_paths(kind)})

    def delete(self, kind: str, key: str) -> bool:
        existed = False
        for path in (self.path_for(kind, key), *self.legacy_paths(kind, key)):
            if path.exists():
                path.unlink(missing_ok=True)
                existed = True
        return existed

    def describe(self) -> str:
        return str(self.root)

    # ------------------------------------------------------------------
    def _entry_paths(self, kind: str) -> Iterator[Path]:
        if kind == "artifact":
            yield from (self.root / "analysis").glob("*/*.npz")
            return
        # result entries: canonical npz shards, then both legacy layouts;
        # the analysis/ subtree is a different key space and is excluded.
        for path in self.root.glob("*/*.npz"):
            if path.parent.name != "analysis":
                yield path
        for path in self.root.glob("*/*.json"):
            if path.parent.name != "analysis":
                yield path
        yield from self.root.glob("*.json")

    def __repr__(self) -> str:
        return f"<LocalCacheBackend {self.root}>"


# ----------------------------------------------------------------------
# Remote backend: client of a `repro serve --cache-only` instance
# ----------------------------------------------------------------------
class RemoteCacheBackend:
    """Blob store served by another ``repro serve --cache-only`` process.

    Topology (``docs/service.md``): one host runs a cache-only
    instance over a :class:`LocalCacheBackend`; every worker host
    points its ``SweepCache`` at ``remote://host:port`` and the whole
    fleet shares one content-addressed store — a cell computed
    anywhere is a hit everywhere.

    Each operation opens a fresh TCP connection, sends one request
    line, reads one response line and disconnects.  Failures raise
    :class:`CacheBackendError`; ``SweepCache`` maps read failures to
    misses, so losing the cache host costs recomputation, not
    correctness.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 10.0):
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------
    def _roundtrip(self, request: dict) -> dict:
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=self.timeout_s) as sock:
                with sock.makefile("rwb") as stream:
                    greeting = stream.readline()  # discard the hello
                    if not greeting:
                        raise CacheBackendError(
                            f"cache server {self.host}:{self.port} closed "
                            "the connection before greeting")
                    stream.write(encode_record(request))
                    stream.flush()
                    line = stream.readline()
        except OSError as exc:
            raise CacheBackendError(
                f"cache server {self.host}:{self.port} unreachable: "
                f"{exc}") from exc
        if not line:
            raise CacheBackendError(
                f"cache server {self.host}:{self.port} closed the "
                "connection mid-request")
        try:
            response = decode_record(line)
        except ProtocolError as exc:
            raise CacheBackendError(str(exc)) from exc
        if response.get("type") == "error":
            raise CacheBackendError(
                f"cache server refused {request.get('type')}: "
                f"{response.get('error')}")
        return response

    # ------------------------------------------------------------------
    def read(self, kind: str, key: str) -> bytes | None:
        _check_kind(kind)
        response = self._roundtrip(
            {"type": "cache_get", "kind": kind, "key": key})
        try:
            return blob_from_wire(response.get("data"))
        except ProtocolError as exc:
            raise CacheBackendError(str(exc)) from exc

    def write(self, kind: str, key: str, blob: bytes) -> None:
        _check_kind(kind)
        self._roundtrip({"type": "cache_put", "kind": kind, "key": key,
                         "data": blob_to_wire(blob)})

    def keys(self, kind: str) -> list[str]:
        _check_kind(kind)
        response = self._roundtrip({"type": "cache_keys", "kind": kind})
        return sorted(str(k) for k in response.get("keys", []))

    def delete(self, kind: str, key: str) -> bool:
        _check_kind(kind)
        response = self._roundtrip(
            {"type": "cache_delete", "kind": kind, "key": key})
        return bool(response.get("deleted"))

    def describe(self) -> str:
        return f"remote://{self.host}:{self.port}"

    def __repr__(self) -> str:
        return f"<RemoteCacheBackend {self.host}:{self.port}>"


# ----------------------------------------------------------------------
def parse_backend_spec(spec) -> CacheBackend:
    """Turn a ``--cache-dir`` argument into a backend.

    ``remote://host:port`` builds a :class:`RemoteCacheBackend`;
    an existing backend instance passes through; anything else is a
    local path.
    """
    if isinstance(spec, (LocalCacheBackend, RemoteCacheBackend)):
        return spec
    text = str(spec)
    if text.startswith("remote://"):
        rest = text[len("remote://"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(
                f"bad remote cache spec {text!r} "
                "(expected remote://host:port)")
        return RemoteCacheBackend(host, int(port))
    return LocalCacheBackend(spec)
