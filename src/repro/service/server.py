"""The ``repro serve`` asyncio TCP server.

One process, two modes:

* **full** (default) — a :class:`~repro.service.jobs.ServiceEngine`
  over the sweep process pool: clients submit cells or whole matrices,
  results stream back per-connection as jobs complete, deduplicated
  and cached.  The cache-protocol records are also served (over the
  engine's local backend), so a full instance doubles as a remote
  cache for other workers.
* **cache-only** (``--cache-only``) — no engine, no pool: just the
  cache records over a :class:`~repro.service.store.LocalCacheBackend`.
  This is the hub of the shared-store topology: point any worker's
  ``--cache-dir`` at ``remote://host:port`` of this instance.

Protocol details live in :mod:`repro.service.protocol` and
``docs/service.md``.  Responses to one connection are serialised by a
per-connection lock; results from concurrent jobs interleave by
completion, each tagged with the submitting request's ``id``.
"""

from __future__ import annotations

import asyncio
import logging
from pathlib import Path

from ..telemetry.metrics import default_registry
from ..telemetry.tracer import get_tracer
from . import protocol
from .jobs import QueueFull, ServiceEngine, expand_matrix
from .store import LocalCacheBackend

_log = logging.getLogger(__name__)


class BenchService:
    """The server object: sockets, dispatch, graceful drain."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache=None,
        jobs: int | None = None,
        queue_limit: int | None = None,
        cache_only: bool = False,
        execute: bool = False,
        registry=None,
        runlog=None,
    ):
        from .jobs import DEFAULT_QUEUE_LIMIT

        self.host = host
        self.port = port  # 0 = ephemeral; real port known after start()
        self.cache = cache
        self.cache_only = cache_only
        self.registry = registry if registry is not None else (
            default_registry())
        self.engine = None if cache_only else ServiceEngine(
            cache=cache, jobs=jobs,
            queue_limit=(queue_limit if queue_limit is not None
                         else DEFAULT_QUEUE_LIMIT),
            execute=execute, registry=self.registry, runlog=runlog)
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._streams: set[asyncio.Task] = set()
        self._next_subscriber = 1

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        return "cache-only" if self.cache_only else "full"

    @property
    def backend(self) -> LocalCacheBackend | None:
        """The local backend behind the cache records, if any."""
        backend = getattr(self.cache, "backend", self.cache)
        return backend if isinstance(backend, LocalCacheBackend) else None

    async def start(self) -> None:
        if self.engine is not None:
            await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("repro serve (%s) listening on %s:%d",
                  self.mode, self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._streams):
            task.cancel()
        if self._streams:
            await asyncio.gather(*self._streams, return_exceptions=True)
        if self.engine is not None:
            await self.engine.stop()

    async def serve_until_shutdown(self) -> None:
        """Block until a client sends ``shutdown`` (or the event is set)."""
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        subscriber = self._next_subscriber
        self._next_subscriber += 1
        lock = asyncio.Lock()

        async def send(record: dict) -> None:
            async with lock:
                writer.write(protocol.encode_record(record))
                await writer.drain()

        await send(protocol.hello(
            self.mode, self.engine.jobs if self.engine else 0))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await send(protocol.error(None, "oversized record"))
                    break
                if not line:
                    break
                try:
                    record = protocol.decode_record(line)
                except protocol.ProtocolError as exc:
                    await send(protocol.error(None, str(exc)))
                    continue
                complaint = protocol.validate_request(
                    record, cache_only=self.cache_only)
                if complaint is not None:
                    await send(protocol.error(record.get("id"), complaint))
                    continue
                if not await self._dispatch(record, subscriber, send):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if self.engine is not None:
                self.engine.detach_all(subscriber)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, record, subscriber, send) -> bool:
        """Handle one request; returns False to close the connection."""
        rtype = record["type"]
        rid = record.get("id")
        if rtype == "ping":
            await send({"type": "pong", "id": rid,
                        "v": protocol.PROTOCOL_VERSION})
        elif rtype == "metrics":
            await send({"type": "metrics", "id": rid,
                        "text": self.registry.expose()})
        elif rtype == "shutdown":
            await send({"type": "bye", "id": rid})
            self.request_shutdown()
            return False
        elif rtype.startswith("cache_"):
            await self._dispatch_cache(record, send)
        elif rtype == "submit":
            await self._submit_cells(
                [(record["benchmark"], record["size"], record["device"])],
                record, subscriber, send)
        elif rtype == "submit_matrix":
            cells = expand_matrix(record.get("benchmarks"),
                                  record.get("sizes"),
                                  record.get("devices"))
            await self._submit_cells(cells, record, subscriber, send)
        elif rtype == "cancel":
            job_id = record.get("job_id", record.get("id"))
            status = self.engine.cancel(int(job_id), subscriber)
            await send({"type": "cancelled", "id": rid,
                        "job_id": int(job_id), "status": status})
        return True

    async def _submit_cells(self, cells, record, subscriber, send) -> None:
        rid = record.get("id")
        opts = {
            "priority": int(record.get("priority", 0)),
            "samples": int(record.get("samples",
                                      _default_samples())),
            "seed": int(record.get("seed", 12345)),
            "execute": record.get("execute"),
        }
        jobs = []
        try:
            for benchmark, size, device in cells:
                job, _deduped = self.engine.submit(
                    benchmark, size, device, subscriber, **opts)
                jobs.append(job)
        except QueueFull as exc:
            # jobs queued before the bound hit stay queued; the client
            # is told how much of the batch was accepted
            await send(protocol.rejected(rid, str(exc), exc.retry_after_s))
            if not jobs:
                return
        except (ValueError, KeyError) as exc:
            await send(protocol.error(rid, str(exc)))
            return
        await send(protocol.ack(rid, [j.job_id for j in jobs],
                                [j.key for j in jobs]))
        for job in jobs:
            task = asyncio.create_task(
                self._stream_result(job, rid, send),
                name=f"stream-{job.job_id}")
            self._streams.add(task)
            task.add_done_callback(self._streams.discard)

    async def _stream_result(self, job, rid, send) -> None:
        try:
            payload = await asyncio.shield(job.future)
            status = job.state
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # job failed; tell the subscriber
            payload, status = {"error": str(exc)}, "failed"
        try:
            await send(protocol.result(rid, job.job_id, job.key, status,
                                       payload, job.cached, job.elapsed_s))
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client left; the result is computed and cached anyway

    async def _dispatch_cache(self, record, send) -> None:
        backend = self.backend
        rid = record.get("id")
        if backend is None:
            await send(protocol.error(
                rid, "this instance has no local cache to serve"))
            return
        loop = asyncio.get_running_loop()
        rtype, kind = record["type"], record.get("kind")
        try:
            if rtype == "cache_get":
                blob = await loop.run_in_executor(
                    None, backend.read, kind, record["key"])
                await send({"type": "cache_blob", "id": rid,
                            "data": protocol.blob_to_wire(blob)})
            elif rtype == "cache_put":
                blob = protocol.blob_from_wire(record["data"])
                await loop.run_in_executor(
                    None, backend.write, kind, record["key"], blob)
                await send({"type": "cache_ok", "id": rid})
            elif rtype == "cache_keys":
                keys = await loop.run_in_executor(None, backend.keys, kind)
                await send({"type": "cache_keys", "id": rid, "keys": keys})
            elif rtype == "cache_delete":
                deleted = await loop.run_in_executor(
                    None, backend.delete, kind, record["key"])
                await send({"type": "cache_ok", "id": rid,
                            "deleted": bool(deleted)})
        except (OSError, protocol.ProtocolError) as exc:
            await send(protocol.error(rid, str(exc)))


def _default_samples() -> int:
    from ..harness.runner import DEFAULT_SAMPLES
    return DEFAULT_SAMPLES


async def run_service(service: BenchService, port_file=None,
                      ready_event: asyncio.Event | None = None) -> None:
    """Start, announce, serve until shutdown, drain."""
    await service.start()
    if port_file:
        path = Path(port_file).expanduser()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(f"{service.port}\n")
    print(f"repro serve ({service.mode}) listening on "
          f"{service.host}:{service.port}", flush=True)
    if ready_event is not None:
        ready_event.set()
    try:
        await service.serve_until_shutdown()
    finally:
        await service.stop()


def serve_forever(service: BenchService, port_file=None) -> None:
    """Synchronous entry point (the CLI's)."""
    try:
        asyncio.run(run_service(service, port_file=port_file))
    except KeyboardInterrupt:
        _log.info("interrupted; shut down")


__all__ = ["BenchService", "run_service", "serve_forever"]
