"""Synchronous client for the benchmark service.

A thin convenience over one TCP connection speaking the v1 protocol —
what the tests, the smoke script and quick shell one-liners use.  It
is deliberately blocking: submit, then read records as they stream.
Anything fancier (many concurrent connections, async pipelining) can
speak :mod:`repro.service.protocol` directly.
"""

from __future__ import annotations

import socket

from .protocol import decode_record, encode_record


class ServiceError(RuntimeError):
    """The server answered with an ``error`` record."""


class ServiceClient:
    """One blocking connection to a ``repro serve`` instance."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0):
        self.sock = socket.create_connection((host, int(port)),
                                             timeout=timeout_s)
        self.stream = self.sock.makefile("rwb")
        self.hello = self.read()  # the greeting
        self._next_id = 1

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self.stream.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def send(self, record: dict) -> dict:
        """Write one request (auto-assigning ``id``); returns it."""
        record = dict(record)
        record.setdefault("id", self._next_id)
        self._next_id += 1
        self.stream.write(encode_record(record))
        self.stream.flush()
        return record

    def read(self) -> dict:
        """Block for the next response record."""
        line = self.stream.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_record(line)

    def read_until(self, rtype: str) -> dict:
        """Read records until one of type ``rtype`` arrives."""
        while True:
            record = self.read()
            if record["type"] == rtype:
                return record
            if record["type"] == "error":
                raise ServiceError(record.get("error", "unknown error"))

    # ------------------------------------------------------------------
    def ping(self) -> dict:
        self.send({"type": "ping"})
        return self.read_until("pong")

    def metrics_text(self) -> str:
        self.send({"type": "metrics"})
        return self.read_until("metrics")["text"]

    def shutdown(self) -> dict:
        self.send({"type": "shutdown"})
        return self.read_until("bye")

    def submit(self, benchmark: str, size: str, device: str,
               **options) -> dict:
        """Submit one cell; returns the ``ack`` (or ``rejected``) record."""
        request = {"type": "submit", "benchmark": benchmark, "size": size,
                   "device": device, **options}
        self.send(request)
        while True:
            record = self.read()
            if record["type"] in ("ack", "rejected"):
                return record
            if record["type"] == "error":
                raise ServiceError(record.get("error", "unknown error"))

    def submit_matrix(self, benchmarks=None, sizes=None,
                      devices=None, **options) -> dict:
        request = {"type": "submit_matrix", "benchmarks": benchmarks,
                   "sizes": sizes, "devices": devices, **options}
        self.send(request)
        record = self.read()
        if record["type"] == "error":
            raise ServiceError(record.get("error", "unknown error"))
        return record

    def cancel(self, job_id: int) -> dict:
        self.send({"type": "cancel", "job_id": int(job_id)})
        return self.read_until("cancelled")

    def results(self, count: int) -> list[dict]:
        """Collect ``count`` streamed ``result`` records (completion order)."""
        collected = []
        while len(collected) < count:
            record = self.read()
            if record["type"] == "result":
                collected.append(record)
            elif record["type"] == "error":
                raise ServiceError(record.get("error", "unknown error"))
        return collected

    def run_cell(self, benchmark: str, size: str, device: str,
                 **options) -> dict:
        """Submit one cell and block for its result record."""
        ack = self.submit(benchmark, size, device, **options)
        if ack["type"] == "rejected":
            raise ServiceError(
                f"rejected: {ack.get('error')} "
                f"(retry_after={ack.get('retry_after')}s)")
        return self.results(1)[0]


__all__ = ["ServiceClient", "ServiceError"]
