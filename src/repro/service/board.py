"""Auto-updating results board: trajectory + served-job history.

``repro regress render --board`` composes the regression trajectory
document (:func:`repro.regress.render.render_markdown`) with a service
section derived from a ``repro serve`` job log — the JSONL stream of
``job_submitted`` / ``job_deduped`` / ``job_done`` / ``job_failed`` /
``job_cancelled`` records the engine writes.  The output is
deterministic for a given (trajectory, job log) pair, so the document
can be committed and checked in CI exactly like ``BENCHMARKS.md``.
"""

from __future__ import annotations

from collections import defaultdict

from ..telemetry.runlog import read_jsonl

#: Engine job-log events the board understands.
JOB_EVENTS = frozenset({
    "job_submitted", "job_deduped", "job_done", "job_failed",
    "job_cancelled",
})


def load_job_history(path) -> list[dict]:
    """The job-relevant records of a service JSONL run log.

    The log may interleave worker ``run_*`` records and sweep events;
    only the ``job_*`` lifecycle records feed the board.
    """
    return [r for r in read_jsonl(path) if r.get("event") in JOB_EVENTS]


def summarize_jobs(records: list[dict]) -> dict:
    """Roll a job history up into board-ready aggregates."""
    done = [r for r in records if r.get("event") == "job_done"]
    cells: dict[tuple, dict] = defaultdict(
        lambda: {"jobs": 0, "cached": 0, "elapsed": []})
    for r in done:
        key = (r.get("benchmark", "?"), r.get("size", "?"),
               r.get("device", "?"))
        entry = cells[key]
        entry["jobs"] += 1
        entry["cached"] += 1 if r.get("cached") else 0
        entry["elapsed"].append(float(r.get("elapsed_s", 0.0)))
    return {
        "submitted": sum(r["event"] == "job_submitted" for r in records),
        "deduped": sum(r["event"] == "job_deduped" for r in records),
        "done": len(done),
        "failed": sum(r["event"] == "job_failed" for r in records),
        "cancelled": sum(r["event"] == "job_cancelled" for r in records),
        "cached": sum(1 for r in done if r.get("cached")),
        "cells": dict(cells),
    }


def _fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def render_job_section(records: list[dict]) -> str:
    """The served-jobs section of the board (markdown)."""
    from ..regress.render import _table

    out = ["\n## Served jobs\n\n"]
    if not records:
        out.append("No served-job history recorded yet.\n")
        return "".join(out)
    summary = summarize_jobs(records)
    computed = summary["done"] - summary["cached"]
    out.append(
        f"{summary['submitted']} job(s) submitted, "
        f"{summary['deduped']} joined in flight (dedup), "
        f"{summary['done']} completed "
        f"({summary['cached']} from cache, {computed} computed), "
        f"{summary['failed']} failed, "
        f"{summary['cancelled']} cancelled.\n\n")
    rows = []
    for (benchmark, size, device), entry in sorted(summary["cells"].items()):
        elapsed = entry["elapsed"]
        mean_s = sum(elapsed) / len(elapsed) if elapsed else 0.0
        rows.append([
            benchmark, size, device, str(entry["jobs"]),
            str(entry["cached"]), _fmt(mean_s * 1e3, 1),
        ])
    out.append(_table(
        ["Benchmark", "Size", "Device", "Jobs", "Cache hits",
         "Mean latency (ms)"], rows))
    out.append("\n")
    return "".join(out)


def render_board(points, job_records: list[dict] | None = None,
                 thresholds=None) -> str:
    """The full board: trajectory document + served-job section."""
    from ..regress.render import render_markdown

    text = render_markdown(points, thresholds)
    return text + render_job_section(job_records or [])


__all__ = ["JOB_EVENTS", "load_job_history", "render_board",
           "render_job_section", "summarize_jobs"]
