"""Wire protocol for the benchmark service (schema v1).

Everything the service speaks — job submission, result streaming, the
metrics endpoint and the remote-cache operations — is **line-delimited
JSON over TCP**: one JSON object per ``\\n``-terminated line, UTF-8,
no framing beyond the newline.  The format is deliberately primitive
(GEMMbench's collaborative-benchmarking framing argues for a wire
format any language can speak from a five-line script) and versioned:
every request may carry ``"v"`` and the server's greeting states the
version it speaks; a mismatch is an ``error`` record, not a silent
reinterpretation.

This module is intentionally dependency-free (stdlib only) so clients
can vendor it: record constructors, the encoder/decoder pair, and the
request validator.  The full schema table lives in
``docs/service.md`` and ``docs/formats.md``.

Request types (client -> server)::

    submit         one (benchmark, size, device) cell
    submit_matrix  a batch: benchmarks x sizes x devices
    cancel         withdraw this connection's interest in a job
    metrics        Prometheus text exposition of the service registry
    ping           liveness probe
    shutdown       ask the server to drain and exit
    cache_get / cache_put / cache_keys / cache_delete
                   remote-cache operations (``--cache-only`` mode)

Response types (server -> client)::

    hello          greeting: protocol version, mode, worker count
    ack            job accepted: server job id(s) + cell key(s)
    rejected       backpressure: queue full, retry after ``retry_after`` s
    result         one finished cell (streamed as each job completes)
    error          the request could not be honoured
    metrics        the exposition text
    pong / bye     ping / shutdown acknowledgements
    cache_blob / cache_ok / cache_keys
                   remote-cache replies
"""

from __future__ import annotations

import base64
import json

#: Wire schema version.  Bump on any incompatible record change.
PROTOCOL_VERSION = 1

#: Upper bound on one encoded record line (16 MiB) — a defence against
#: a confused client streaming a non-protocol byte stream at the
#: server, not a practical limit (large-size cell payloads are ~100 KiB).
MAX_LINE_BYTES = 16 * 1024 * 1024

REQUEST_TYPES = frozenset({
    "submit", "submit_matrix", "cancel", "metrics", "ping", "shutdown",
    "cache_get", "cache_put", "cache_keys", "cache_delete",
})

#: Request types valid against a ``--cache-only`` instance.
CACHE_REQUEST_TYPES = frozenset({
    "cache_get", "cache_put", "cache_keys", "cache_delete",
    "ping", "metrics", "shutdown",
})

#: Blob kinds the cache protocol addresses (the two layers of the
#: sweep store: result entries and analysis artifacts).
CACHE_KINDS = ("result", "artifact")


class ProtocolError(ValueError):
    """A malformed or out-of-contract protocol record."""


def encode_record(record: dict) -> bytes:
    """One record as a ``\\n``-terminated JSON line (the wire unit)."""
    return (json.dumps(record, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_record(line: bytes | str) -> dict:
    """Parse one wire line back into a record dict.

    Raises
    ------
    ProtocolError
        When the line is not a JSON object, or exceeds
        :data:`MAX_LINE_BYTES`.
    """
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"record exceeds {MAX_LINE_BYTES} bytes")
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable record: {exc}") from None
    if not isinstance(record, dict):
        raise ProtocolError("record is not a JSON object")
    return record


def validate_request(record: dict, cache_only: bool = False) -> str | None:
    """Why ``record`` is not an acceptable request, or ``None`` if it is.

    Checks the type field, the protocol version (when present) and the
    per-type required fields — everything that can be rejected before
    touching the engine.  Semantic failures (unknown benchmark, queue
    full) are the server's to report.
    """
    rtype = record.get("type")
    if rtype not in REQUEST_TYPES:
        return f"unknown request type {rtype!r}"
    version = record.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        return (f"protocol version {version!r} not supported "
                f"(server speaks v{PROTOCOL_VERSION})")
    if cache_only and rtype not in CACHE_REQUEST_TYPES:
        return f"request {rtype!r} not served in cache-only mode"
    if rtype == "submit":
        for field in ("benchmark", "size", "device"):
            if not isinstance(record.get(field), str):
                return f"submit requires a string {field!r} field"
    if rtype == "submit_matrix":
        for field in ("benchmarks", "sizes", "devices"):
            value = record.get(field)
            if value is not None and not (
                    isinstance(value, list)
                    and all(isinstance(v, str) for v in value)):
                return (f"submit_matrix field {field!r} must be a list of "
                        "strings or null (null = every registered one)")
    if rtype == "cancel" and "id" not in record and "job_id" not in record:
        return "cancel requires an `id` or `job_id` field"
    if rtype in ("cache_get", "cache_put", "cache_delete"):
        if record.get("kind") not in CACHE_KINDS:
            return f"cache kind must be one of {CACHE_KINDS}"
        if not isinstance(record.get("key"), str):
            return f"{rtype} requires a string `key` field"
    if rtype == "cache_keys" and record.get("kind") not in CACHE_KINDS:
        return f"cache kind must be one of {CACHE_KINDS}"
    if rtype == "cache_put" and not isinstance(record.get("data"), str):
        return "cache_put requires base64 `data`"
    return None


# ----------------------------------------------------------------------
# Blob transport: cache entries are opaque bytes on the wire
# ----------------------------------------------------------------------
def blob_to_wire(blob: bytes | None) -> str | None:
    """Bytes -> base64 text for a JSON field (``None`` passes through)."""
    if blob is None:
        return None
    return base64.b64encode(blob).decode("ascii")


def blob_from_wire(data: str | None) -> bytes | None:
    """Base64 text -> bytes; raises :class:`ProtocolError` on bad input."""
    if data is None:
        return None
    try:
        return base64.b64decode(data.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(f"invalid base64 blob: {exc}") from None


# ----------------------------------------------------------------------
# Record constructors (the server side uses these; clients may)
# ----------------------------------------------------------------------
def hello(mode: str, jobs: int) -> dict:
    """The greeting the server sends on connect."""
    return {"type": "hello", "v": PROTOCOL_VERSION, "mode": mode,
            "jobs": jobs}


def ack(request_id, job_ids: list[int], keys: list[str]) -> dict:
    """Jobs accepted: the server ids and cell keys, in request order."""
    return {"type": "ack", "id": request_id, "job_ids": job_ids,
            "keys": keys}


def rejected(request_id, reason: str, retry_after: float) -> dict:
    """Backpressure: the request was not queued; retry later."""
    return {"type": "rejected", "id": request_id, "error": reason,
            "retry_after": round(float(retry_after), 3)}


def error(request_id, reason: str) -> dict:
    """The request could not be honoured (semantic failure)."""
    return {"type": "error", "id": request_id, "error": reason}


def result(request_id, job_id: int, key: str, status: str,
           payload: dict | None, cached: bool, elapsed_s: float) -> dict:
    """One finished cell, streamed when its job completes."""
    return {
        "type": "result", "id": request_id, "job_id": job_id, "key": key,
        "status": status, "cached": cached,
        "elapsed_s": round(float(elapsed_s), 6), "result": payload,
    }
