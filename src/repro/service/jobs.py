"""Job queue + execution engine behind ``repro serve``.

The service side of the sweep engine: many clients submit
(benchmark, size, device) cells; the engine turns each into a
:class:`~repro.harness.runner.RunConfig`, keys it with the same
content address the :class:`~repro.harness.sweep.SweepCache` uses, and
drives a bounded process pool.  Three properties the batch engine does
not need, this one does:

* **In-flight deduplication** — N concurrent requests for the same
  cell key collapse onto one :class:`Job`; every subscriber gets the
  (bit-identical) answer when the single computation lands.  Dedup is
  by ``cell_key``, so it composes with the result cache: a cell is
  computed at most once *ever*, and concurrently requested at most
  once *at a time*.
* **Backpressure** — the pending queue is bounded; a submit beyond the
  bound raises :class:`QueueFull` carrying a ``retry_after`` estimate
  (current depth x observed mean cell latency), which the server
  surfaces as a ``rejected`` record instead of letting the queue grow
  without bound.
* **Priority + LPT dispatch** — each dispatch picks the
  highest-priority pending job; ties break longest-modeled-first via
  :func:`repro.scheduling.sweep_execution_order`, the same makespan
  heuristic the batch sweep uses.

Determinism: cells are measured by the same module-level
:func:`~repro.harness.sweep._compute_cell` worker the batch engine
uses, so a served result is bit-identical to ``run_matrix`` output for
the same config (per-cell seeds are process-stable).

Telemetry: worker spans are grafted under a completion-time
``service_job`` span (the span stack is touched only synchronously,
never across an ``await``), worker metric snapshots merge into the
server registry, and the engine maintains the service instruments —
``service_queue_depth`` / ``service_jobs_inflight`` gauges,
``service_requests_total`` / ``service_dedup_hits_total`` /
``service_cache_hits_total`` counters and the
``service_cell_latency_seconds`` histogram.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..harness.runner import DEFAULT_SAMPLES, RunConfig
from ..harness.sweep import (
    SweepCache,
    _compute_cell,
    cell_key,
    result_from_payload,
)
from ..telemetry.metrics import default_registry
from ..telemetry.runlog import get_default_runlog
from ..telemetry.tracer import get_tracer

#: Job lifecycle states.
PENDING, RUNNING, DONE, FAILED, CANCELLED = (
    "pending", "running", "done", "failed", "cancelled")

#: Default bound on the pending queue (per server instance).
DEFAULT_QUEUE_LIMIT = 64

#: retry_after floor when no latency has been observed yet.
_MIN_RETRY_AFTER_S = 1.0


class QueueFull(RuntimeError):
    """The pending queue is at its bound; retry after ``retry_after_s``."""

    def __init__(self, depth: int, limit: int, retry_after_s: float):
        super().__init__(
            f"queue full ({depth}/{limit} pending); "
            f"retry in ~{retry_after_s:.1f}s")
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One deduplicated unit of service work (possibly many subscribers)."""

    job_id: int
    config: RunConfig
    key: str
    priority: int = 0
    state: str = PENDING
    subscribers: set = field(default_factory=set)
    future: asyncio.Future = None  # resolves to a result payload dict
    submitted_s: float = 0.0
    cached: bool = False
    elapsed_s: float = 0.0

    def summary(self) -> dict:
        """JSON-safe job description (for the job log / board)."""
        return {
            "job_id": self.job_id,
            "benchmark": self.config.benchmark,
            "size": self.config.size,
            "device": self.config.device,
            "key": self.key,
            "priority": self.priority,
            "state": self.state,
            "cached": self.cached,
            "elapsed_s": round(self.elapsed_s, 6),
            "subscribers": len(self.subscribers),
        }


def expand_matrix(benchmarks=None, sizes=None, devices=None,
                  ) -> list[tuple[str, str, str]]:
    """A ``submit_matrix`` request's cell list (``None`` = every one)."""
    from ..devices.catalog import device_names
    from ..dwarfs.base import SIZES
    from ..dwarfs.registry import BENCHMARKS

    benchmarks = list(benchmarks) if benchmarks else sorted(BENCHMARKS)
    sizes = list(sizes) if sizes else list(SIZES)
    devices = list(devices) if devices else list(device_names())
    return [(b, s, d) for b in benchmarks for s in sizes for d in devices]


class ServiceEngine:
    """Asyncio-side scheduler over the sweep process pool.

    One engine per server.  All public methods must be called from the
    event-loop thread; the blocking pieces (cache I/O, cell
    measurement) run in executors.
    """

    def __init__(
        self,
        cache: SweepCache | None = None,
        jobs: int | None = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        execute: bool = False,
        registry=None,
        runlog=None,
    ):
        import os
        self.cache = cache
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.queue_limit = max(1, queue_limit)
        self.execute = execute
        self.registry = registry if registry is not None else (
            default_registry())
        self.runlog = runlog if runlog is not None else get_default_runlog()

        self._pool: ProcessPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        self._running = False
        # loop-lazy (3.10+): safe to create off-loop, bind on first await
        self._wakeup = asyncio.Event()
        self._slots = asyncio.Semaphore(self.jobs)
        self._pending: list[Job] = []
        self._by_key: dict[str, Job] = {}
        self._jobs: dict[int, Job] = {}
        self._next_id = 1

        reg = self.registry
        self._requests = reg.counter(
            "service_requests_total", "Service requests accepted, by type")
        self._dedup_hits = reg.counter(
            "service_dedup_hits_total",
            "Submits that joined an already in-flight job")
        self._cache_hits = reg.counter(
            "service_cache_hits_total",
            "Served jobs resolved from the result cache")
        self._queue_depth = reg.gauge(
            "service_queue_depth", "Jobs waiting for a worker slot")
        self._inflight = reg.gauge(
            "service_jobs_inflight", "Jobs currently occupying a worker slot")
        self._latency = reg.bucket_histogram(
            "service_cell_latency_seconds",
            "Submit-to-result latency per served job")
        self._computed = reg.counter(
            "sweep_cells_computed_total", "Sweep cells actually measured")
        self._cached_counter = reg.counter(
            "sweep_cells_cached_total",
            "Sweep cells restored from the result cache")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the pool and the dispatcher (idempotent)."""
        if self._running:
            return
        self._running = True
        self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        if self._pending:
            self._wakeup.set()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="service-dispatcher")

    async def stop(self) -> None:
        """Drain: stop dispatching, cancel the pending, await the running."""
        if not self._running:
            return
        self._running = False
        self._wakeup.set()
        await self._dispatcher
        for job in list(self._pending):
            self._resolve_cancelled(job)
        self._pending.clear()
        self._queue_depth.set(0)
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)
        self._pool = None

    # ------------------------------------------------------------------
    # Submission / cancellation (event-loop thread only)
    # ------------------------------------------------------------------
    def submit(
        self,
        benchmark: str,
        size: str,
        device: str,
        subscriber,
        priority: int = 0,
        samples: int = DEFAULT_SAMPLES,
        seed: int = 12345,
        execute: bool | None = None,
    ) -> tuple[Job, bool]:
        """Queue one cell (or join its in-flight job).

        Returns ``(job, deduped)``.  Raises :class:`QueueFull` under
        backpressure and ``ValueError`` for an unknown
        benchmark/size/device.
        """
        config = self._validated_config(benchmark, size, device,
                                        samples=samples, seed=seed,
                                        execute=execute)
        key = self.cache.key(config) if self.cache else cell_key(config)
        self._requests.inc(type="submit")

        existing = self._by_key.get(key)
        if existing is not None and existing.state in (PENDING, RUNNING):
            existing.subscribers.add(subscriber)
            existing.priority = max(existing.priority, priority)
            self._dedup_hits.inc()
            if self.runlog is not None:
                self.runlog.write("job_deduped", job_id=existing.job_id,
                                  key=key, subscribers=len(
                                      existing.subscribers))
            return existing, True

        depth = len(self._pending)
        if depth >= self.queue_limit:
            raise QueueFull(depth, self.queue_limit, self._retry_after(depth))

        job = Job(job_id=self._next_id, config=config, key=key,
                  priority=priority, submitted_s=time.perf_counter(),
                  future=asyncio.get_running_loop().create_future())
        self._next_id += 1
        job.subscribers.add(subscriber)
        self._jobs[job.job_id] = job
        self._by_key[key] = job
        self._pending.append(job)
        self._queue_depth.set(len(self._pending))
        if self.runlog is not None:
            self.runlog.write("job_submitted", **job.summary())
        self._wakeup.set()
        return job, False

    def cancel(self, job_id: int, subscriber) -> str:
        """Withdraw one subscriber's interest; returns the outcome.

        ``"cancelled"`` — the job was pending with no other subscriber
        and has been dropped.  ``"detached"`` — others still want it.
        ``"running"`` — too late: a running job always completes (and
        caches), the caller just stops listening.  ``"done"`` /
        ``"unknown"`` are what they sound like.
        """
        job = self._jobs.get(job_id)
        if job is None:
            return "unknown"
        job.subscribers.discard(subscriber)
        if job.state in (DONE, FAILED, CANCELLED):
            return "done"
        if job.subscribers:
            return "detached"
        if job.state == PENDING:
            if job in self._pending:
                self._pending.remove(job)
            self._queue_depth.set(len(self._pending))
            self._resolve_cancelled(job)
            return "cancelled"
        return "running"

    def detach_all(self, subscriber) -> int:
        """Drop ``subscriber`` from every job (client disconnected)."""
        dropped = 0
        for job in list(self._jobs.values()):
            if subscriber in job.subscribers:
                self.cancel(job.job_id, subscriber)
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validated_config(self, benchmark, size, device, *, samples, seed,
                          execute) -> RunConfig:
        from ..devices.catalog import get_device
        from ..dwarfs.base import SIZES
        from ..dwarfs.registry import BENCHMARKS, get_benchmark

        if benchmark not in BENCHMARKS:
            raise ValueError(f"unknown benchmark {benchmark!r} "
                             f"(one of {sorted(BENCHMARKS)})")
        get_benchmark(benchmark)
        if size not in SIZES:
            raise ValueError(f"unknown size {size!r} (one of {list(SIZES)})")
        get_device(device)  # raises KeyError with the catalog listing
        execute = self.execute if execute is None else bool(execute)
        return RunConfig(benchmark=benchmark, size=size, device=device,
                         samples=int(samples), execute=execute,
                         validate=execute, seed=int(seed))

    def _retry_after(self, depth: int) -> float:
        # depth x observed mean latency; floor when nothing has finished
        n = self._latency.total_count
        mean = (self._latency.sum() / n) if n else 0.0
        return max(_MIN_RETRY_AFTER_S, depth * mean)

    def _resolve_cancelled(self, job: Job) -> None:
        job.state = CANCELLED
        self._by_key.pop(job.key, None)
        if not job.future.done():
            job.future.set_result(None)
        if self.runlog is not None:
            self.runlog.write("job_cancelled", job_id=job.job_id,
                              key=job.key)

    def _pop_next(self) -> Job | None:
        """Highest priority first; LPT (modeled-longest) among ties."""
        from ..scheduling import sweep_execution_order

        if not self._pending:
            return None
        top = max(job.priority for job in self._pending)
        group = [job for job in self._pending if job.priority == top]
        order = sweep_execution_order([job.config for job in group])
        job = group[order[0]]
        self._pending.remove(job)
        self._queue_depth.set(len(self._pending))
        return job

    async def _dispatch_loop(self) -> None:
        while self._running:
            if not self._pending:
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            await self._slots.acquire()
            job = self._pop_next()  # re-check: the await may have raced
            if job is None or not self._running:
                self._slots.release()
                if job is not None:
                    self._pending.append(job)
                continue
            task = asyncio.create_task(self._run_job(job),
                                       name=f"service-job-{job.job_id}")
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        """One slot's worth of work; the semaphore is already held."""
        loop = asyncio.get_running_loop()
        tracer = get_tracer()
        job.state = RUNNING
        try:
            with self._inflight.track_inprogress():
                hit = None
                if self.cache is not None:
                    hit = await loop.run_in_executor(
                        None, self.cache.get, job.key)
                if hit is not None:
                    from ..harness.sweep import result_to_payload
                    payload = result_to_payload(hit)
                    self._cache_hits.inc()
                    self._cached_counter.inc()
                    self._finish(job, payload, cached=True)
                    with tracer.span("service_job", phase="sweep",
                                     benchmark=job.config.benchmark,
                                     size=job.config.size,
                                     device=job.config.device,
                                     job_id=job.job_id, key=job.key,
                                     cached=True):
                        pass
                    return
                trace_ctx = tracer.propagation_context()
                payload, records, metrics, spans = (
                    await loop.run_in_executor(
                        self._pool, _compute_cell, job.config, trace_ctx))
                # back on the loop thread: merge worker telemetry, then
                # open/graft/close the job span with no awaits in
                # between (the span stack is shared across tasks)
                if self.runlog is not None:
                    for record in records:
                        self.runlog.write_record(record)
                self.registry.merge_snapshot(metrics)
                with tracer.span("service_job", phase="sweep",
                                 benchmark=job.config.benchmark,
                                 size=job.config.size,
                                 device=job.config.device,
                                 job_id=job.job_id, key=job.key,
                                 cached=False):
                    tracer.graft(spans)
                self._computed.inc()
                if self.cache is not None:
                    result = result_from_payload(payload)
                    await loop.run_in_executor(
                        None, self.cache.put, job.key, job.config, result)
                self._finish(job, payload, cached=False)
        except Exception as exc:  # surface to every subscriber
            job.state = FAILED
            self._by_key.pop(job.key, None)
            if not job.future.done():
                job.future.set_exception(exc)
            if self.runlog is not None:
                self.runlog.write("job_failed", job_id=job.job_id,
                                  key=job.key, error=str(exc))
        finally:
            self._slots.release()
            self._wakeup.set()

    def _finish(self, job: Job, payload: dict, cached: bool) -> None:
        job.state = DONE
        job.cached = cached
        job.elapsed_s = time.perf_counter() - job.submitted_s
        self._by_key.pop(job.key, None)
        self._latency.observe(job.elapsed_s)
        if not job.future.done():
            job.future.set_result(payload)
        if self.runlog is not None:
            self.runlog.write("job_done", **job.summary())
