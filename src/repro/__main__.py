"""``python -m repro`` — the harness CLI without console-script install."""

import sys

from .harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
