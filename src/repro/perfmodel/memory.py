"""Memory-system model: effective bandwidth by access pattern.

The paper's problem-size methodology rests on the observation that the
*same* kernel is served at very different rates depending on which
level of the memory hierarchy its working set resides in (tiny -> L1,
small -> L2, medium -> L3, large -> DRAM).  This module models that:
given a device and a working-set size, it produces the sustained
bandwidth for sequential, strided and random access patterns.

Model
-----
* **Sequential** traffic streams at the bandwidth of the cache level
  holding the working set (:meth:`DeviceSpec.effective_bandwidth_gbs`).
* **Strided** traffic: CPU hardware prefetchers hide small strides and
  retain ~70% of streaming bandwidth; on GPUs a strided pattern breaks
  coalescing, so each 32-wide access splits into multiple transactions
  (~4x amplification).
* **Random** traffic is bounded both by line-fill amplification (a full
  cache line is moved for every element) and by latency x MLP: at most
  ``mlp`` misses are in flight, each taking ``latency`` to return, so
  useful bandwidth cannot exceed ``mlp * line_bytes / latency``.
  GPUs hide latency with thousands of resident threads (huge MLP);
  CPUs sustain ~10 outstanding misses per core.
"""

from __future__ import annotations

from ..devices.specs import DeviceSpec
from ..ocl.types import DeviceType

#: Typical element size for amplification accounting (fp32 / int32).
ELEMENT_BYTES = 4.0

#: CPU prefetchers retain this fraction of streaming bandwidth on
#: small-stride patterns.
CPU_STRIDE_RETENTION = 0.70

#: Uncoalesced GPU access splits one transaction into roughly this many.
GPU_UNCOALESCED_FACTOR = 4.0

#: Outstanding misses sustained per CPU hardware thread (line-fill buffers).
CPU_MLP_PER_THREAD = 10


def memory_level_parallelism(spec: DeviceSpec) -> float:
    """Number of memory requests the device keeps in flight."""
    if spec.device_type == DeviceType.GPU:
        # Thousands of resident work items each with an outstanding load.
        return max(64.0, spec.compute.saturation_items / 2.0)
    # CPUs/MIC: hardware threads x line-fill buffers.
    lanes_per_thread = max(1, spec.compute.simd_width_bits // 32)
    threads = max(1, spec.compute.parallel_lanes // lanes_per_thread)
    return threads * CPU_MLP_PER_THREAD


def sequential_bandwidth_gbs(spec: DeviceSpec, working_set_bytes: float) -> float:
    """Streaming bandwidth for the cache level holding the working set."""
    return spec.effective_bandwidth_gbs(int(working_set_bytes))


def strided_bandwidth_gbs(spec: DeviceSpec, working_set_bytes: float) -> float:
    """Bandwidth for small-constant-stride access."""
    seq = sequential_bandwidth_gbs(spec, working_set_bytes)
    if spec.device_type == DeviceType.GPU:
        return seq / GPU_UNCOALESCED_FACTOR
    return seq * CPU_STRIDE_RETENTION


def random_bandwidth_gbs(spec: DeviceSpec, working_set_bytes: float) -> float:
    """Useful bandwidth for data-dependent (indexed) access.

    Bounded by latency x MLP and degraded by cache-line amplification:
    every ~4-byte element costs a full line fill once the working set
    exceeds the level providing locality.
    """
    seq = sequential_bandwidth_gbs(spec, working_set_bytes)
    latency_ns = spec.effective_latency_ns(int(working_set_bytes))
    line = spec.caches[0].line_bytes
    mlp = memory_level_parallelism(spec)
    latency_bound = mlp * line / latency_ns  # bytes/ns == GB/s
    amplification = min(line / ELEMENT_BYTES, 8.0)
    return min(seq, latency_bound) / amplification


def memory_time_s(
    spec: DeviceSpec,
    bytes_total: float,
    working_set_bytes: float,
    seq_fraction: float,
    strided_fraction: float,
    random_fraction: float,
    bandwidth_utilization: float = 1.0,
) -> float:
    """Time to move ``bytes_total`` with the given pattern mix.

    ``bandwidth_utilization`` in (0, 1] derates bandwidth when too few
    work items are in flight to saturate the memory system (small
    problems on wide devices).
    """
    if bytes_total <= 0:
        return 0.0
    util = max(bandwidth_utilization, 1e-3)
    t = 0.0
    if seq_fraction:
        t += bytes_total * seq_fraction / (sequential_bandwidth_gbs(spec, working_set_bytes) * 1e9)
    if strided_fraction:
        t += bytes_total * strided_fraction / (strided_bandwidth_gbs(spec, working_set_bytes) * 1e9)
    if random_fraction:
        t += bytes_total * random_fraction / (random_bandwidth_gbs(spec, working_set_bytes) * 1e9)
    return t / util
