"""Roofline analysis: device ceilings and achieved kernel positions.

The paper's future work wants "some notion of 'ideal' performance for
each combination of benchmark and device, which would guide efforts to
improve performance portability" (§7).  The roofline model *is* that
notion: a kernel's arithmetic intensity places it under either the
compute ceiling or a bandwidth diagonal, and the gap between achieved
and ceiling performance is the portability headroom.

This module computes roofline data from the device specs and kernel
profiles, and renders it as a standalone HTML/SVG log-log chart
(single accent hue, direct-labeled points, table view — the dataviz
"emphasis" form: the ceilings are context, the kernels are the story).
"""

from __future__ import annotations

import html
import math
from dataclasses import dataclass
from pathlib import Path

from ..devices.specs import DeviceSpec
from .characterization import KernelProfile
from .roofline import iteration_time


@dataclass(frozen=True)
class Ceiling:
    """One roofline ceiling: a bandwidth diagonal or the compute roof."""

    name: str
    #: GB/s for bandwidth ceilings; None for the compute roof.
    bandwidth_gbs: float | None
    #: GFLOP/s of the flat roof (compute) or of the diagonal at the
    #: ridge point.
    gflops: float

    def value_at(self, intensity: float) -> float:
        """Attainable GFLOP/s at an arithmetic intensity (flops/byte)."""
        if self.bandwidth_gbs is None:
            return self.gflops
        return min(self.bandwidth_gbs * intensity, self.gflops)


@dataclass(frozen=True)
class KernelPoint:
    """A kernel's position on the roofline."""

    label: str
    arithmetic_intensity: float
    achieved_gflops: float
    attainable_gflops: float

    @property
    def efficiency(self) -> float:
        """Achieved / attainable: the performance-portability headroom."""
        if self.attainable_gflops <= 0:
            return 0.0
        return self.achieved_gflops / self.attainable_gflops


def device_ceilings(spec: DeviceSpec) -> list[Ceiling]:
    """The compute roof plus one diagonal per memory level."""
    roof = spec.compute.fp32_gflops * spec.compute.efficiency
    ceilings = [Ceiling("compute", None, roof)]
    names = ["L1", "L2", "L3"]
    for i, level in enumerate(spec.caches):
        name = names[i] if i < len(names) else f"L{i + 1}"
        ceilings.append(Ceiling(name, level.bandwidth_gbs, roof))
    ceilings.append(Ceiling("DRAM", spec.memory.bandwidth_gbs, roof))
    return ceilings


def ridge_point(spec: DeviceSpec) -> float:
    """DRAM ridge: the intensity where memory stops being the bound."""
    roof = spec.compute.fp32_gflops * spec.compute.efficiency
    return roof / spec.memory.bandwidth_gbs


def kernel_point(spec: DeviceSpec, label: str,
                 profiles: list[KernelProfile]) -> KernelPoint:
    """Place one benchmark's kernels on a device's roofline."""
    flops = sum(p.flops * p.launches for p in profiles)
    bytes_total = sum(p.bytes_total * p.launches for p in profiles)
    time_s = iteration_time(spec, profiles).total_s
    intensity = flops / bytes_total if bytes_total else math.inf
    achieved = flops / time_s / 1e9 if time_s > 0 else 0.0
    working_set = max(p.working_set_bytes for p in profiles)
    bandwidth = spec.effective_bandwidth_gbs(int(working_set))
    roof = spec.compute.fp32_gflops * spec.compute.efficiency
    attainable = (roof if not math.isfinite(intensity)
                  else min(bandwidth * intensity, roof))
    return KernelPoint(
        label=label,
        arithmetic_intensity=intensity,
        achieved_gflops=achieved,
        attainable_gflops=attainable,
    )


def suite_points(spec: DeviceSpec, size: str = "large") -> list[KernelPoint]:
    """Roofline points for every *floating-point* paper benchmark.

    Integer-only kernels (crc, nw, nqueens) have no meaningful FLOP
    position and are omitted, as in conventional roofline practice.
    """
    from ..dwarfs.registry import BENCHMARKS

    points = []
    for name, cls in BENCHMARKS.items():
        use = size if size in cls.presets else cls.available_sizes()[-1]
        bench = cls.from_size(use)
        profiles = bench.profiles()
        if sum(p.flops for p in profiles) <= 0:
            continue
        points.append(kernel_point(spec, name, profiles))
    return points


# ----------------------------------------------------------------------
# HTML/SVG rendering (log-log; emphasis form)
# ----------------------------------------------------------------------
_CSS = """
.viz-root { --surface-1:#fcfcfb; --text-primary:#0b0b0b;
  --text-secondary:#52514e; --grid:#e7e6e2; --accent:#2a78d6;
  background:var(--surface-1); color:var(--text-primary);
  font:13px/1.45 system-ui,sans-serif; padding:16px; max-width:860px; }
@media (prefers-color-scheme: dark) {
  .viz-root { --surface-1:#1a1a19; --text-primary:#ffffff;
    --text-secondary:#c3c2b7; --grid:#383835; --accent:#3987e5; } }
.viz-root h1 { font-size:17px; margin:0 0 2px; }
.viz-root .subtitle { color:var(--text-secondary); margin:0 0 12px; }
.viz-root svg text { fill:var(--text-primary); font:11px system-ui,sans-serif; }
.viz-root svg .tick-label, .viz-root svg .ceiling-label
  { fill:var(--text-secondary); font-size:10px; }
.viz-root svg .grid { stroke:var(--grid); stroke-width:1; }
.viz-root svg .ceiling { stroke:var(--text-secondary); stroke-width:2;
  fill:none; stroke-linejoin:round; }
.viz-root svg .point { fill:var(--accent); stroke:var(--surface-1);
  stroke-width:2; }
.viz-root table { border-collapse:collapse; margin-top:16px; width:100%; }
.viz-root th,.viz-root td { text-align:right; padding:3px 8px;
  border-bottom:1px solid var(--grid); font-size:12px; }
.viz-root th:first-child,.viz-root td:first-child { text-align:left; }
"""

_W, _H, _L, _B = 640, 360, 70, 40


def _log_scale(lo: float, hi: float, size: float, offset: float):
    a, b = math.log10(lo), math.log10(hi)

    def scale(v: float) -> float:
        v = min(max(v, lo), hi)
        return offset + (math.log10(v) - a) / (b - a) * size
    return scale


def render_roofline_html(spec: DeviceSpec,
                         points: list[KernelPoint]) -> str:
    """Standalone HTML/SVG roofline chart for one device."""
    ceilings = [c for c in device_ceilings(spec) if c.bandwidth_gbs]
    roof = spec.compute.fp32_gflops * spec.compute.efficiency
    xs = [p.arithmetic_intensity for p in points
          if math.isfinite(p.arithmetic_intensity)]
    x_lo = min([0.01] + [x / 2 for x in xs])
    x_hi = max([100.0] + [x * 2 for x in xs] + [2 * ridge_point(spec)])
    y_lo = max(min([roof / 1e4] + [p.achieved_gflops / 2 for p in points
                                   if p.achieved_gflops > 0]), 1e-3)
    y_hi = roof * 2
    sx = _log_scale(x_lo, x_hi, _W, _L)
    sy_raw = _log_scale(y_lo, y_hi, _H - _B - 10, 0)

    def sy(v: float) -> float:
        return (_H - _B) - sy_raw(v)

    parts = [f'<svg role="img" viewBox="0 0 {_L + _W + 30} {_H}" width="100%" '
             f'aria-label="roofline">']
    # decade gridlines + ticks
    for e in range(math.floor(math.log10(x_lo)), math.ceil(math.log10(x_hi)) + 1):
        v = 10.0 ** e
        if not x_lo <= v <= x_hi:
            continue
        parts.append(f'<line class="grid" x1="{sx(v):.1f}" y1="10" '
                     f'x2="{sx(v):.1f}" y2="{_H - _B}"/>')
        parts.append(f'<text class="tick-label" x="{sx(v):.1f}" '
                     f'y="{_H - _B + 14}" text-anchor="middle">{v:g}</text>')
    for e in range(math.ceil(math.log10(y_lo)), math.ceil(math.log10(y_hi)) + 1):
        v = 10.0 ** e
        if not y_lo <= v <= y_hi:
            continue
        parts.append(f'<line class="grid" x1="{_L}" y1="{sy(v):.1f}" '
                     f'x2="{_L + _W}" y2="{sy(v):.1f}"/>')
        parts.append(f'<text class="tick-label" x="{_L - 6}" y="{sy(v) + 3:.1f}" '
                     f'text-anchor="end">{v:g}</text>')
    parts.append(f'<text class="tick-label" x="{_L + _W}" y="{_H - 6}" '
                 'text-anchor="end">arithmetic intensity (flop/byte), log</text>')
    parts.append(f'<text class="tick-label" x="{_L}" y="8">GFLOP/s, log</text>')

    # ceilings: one polyline per memory level + the shared roof
    for c in ceilings:
        ridge = roof / c.bandwidth_gbs
        pts = [(x_lo, c.bandwidth_gbs * x_lo)]
        if x_lo < ridge < x_hi:
            pts.append((ridge, roof))
            pts.append((x_hi, roof))
        else:
            pts.append((x_hi, min(c.bandwidth_gbs * x_hi, roof)))
        path = " ".join(f"{sx(x):.1f},{sy(max(y, y_lo)):.1f}" for x, y in pts)
        parts.append(f'<polyline class="ceiling" points="{path}">'
                     f'<title>{html.escape(c.name)}: '
                     f'{c.bandwidth_gbs:g} GB/s</title></polyline>')
        label_x, label_y = pts[0]
        parts.append(f'<text class="ceiling-label" x="{sx(label_x) + 4:.1f}" '
                     f'y="{sy(max(label_y, y_lo)) - 4:.1f}">'
                     f'{html.escape(c.name)}</text>')

    # kernel points, direct-labeled (identity never rides on color)
    for p in points:
        if not math.isfinite(p.arithmetic_intensity):
            continue
        cx, cy = sx(p.arithmetic_intensity), sy(max(p.achieved_gflops, y_lo))
        tooltip = (f"{p.label}: AI {p.arithmetic_intensity:.2f}, achieved "
                   f"{p.achieved_gflops:.2f} GFLOP/s, attainable "
                   f"{p.attainable_gflops:.2f} ({p.efficiency:.0%})")
        parts.append(f'<g><circle class="point" cx="{cx:.1f}" cy="{cy:.1f}" '
                     f'r="5"/><text x="{cx + 8:.1f}" y="{cy + 4:.1f}">'
                     f'{html.escape(p.label)}</text>'
                     f'<title>{html.escape(tooltip)}</title></g>')
    parts.append("</svg>")

    table = ['<table><tr><th>kernel</th><th>AI (flop/B)</th>'
             '<th>achieved GF/s</th><th>attainable GF/s</th>'
             '<th>efficiency</th></tr>']
    for p in points:
        table.append(
            f"<tr><td>{html.escape(p.label)}</td>"
            f"<td>{p.arithmetic_intensity:.3g}</td>"
            f"<td>{p.achieved_gflops:.3g}</td>"
            f"<td>{p.attainable_gflops:.3g}</td>"
            f"<td>{p.efficiency:.0%}</td></tr>")
    table.append("</table>")

    return ("<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>Roofline — {html.escape(spec.name)}</title>"
            f"<style>{_CSS}</style></head><body><div class='viz-root'>"
            f"<h1>Roofline — {html.escape(spec.name)}</h1>"
            f"<p class='subtitle'>compute roof "
            f"{roof:.0f} GFLOP/s (sustained); DRAM ridge at "
            f"{ridge_point(spec):.1f} flop/byte</p>"
            + "".join(parts) + "".join(table)
            + "</div></body></html>")


def save_roofline_html(spec: DeviceSpec, points: list[KernelPoint],
                       path) -> Path:
    path = Path(path)
    path.write_text(render_roofline_html(spec, points))
    return path
