"""Host <-> device transfer model.

The paper measures memory-transfer segments for every benchmark (though
only kernel times are presented).  Discrete GPUs move buffers over
PCIe; for CPU devices (and the KNL, which is self-hosted here) a
"transfer" is a memcpy within host memory, so the link bandwidth equals
memory bandwidth and latency is sub-microsecond.
"""

from __future__ import annotations

from ..devices.specs import DeviceSpec


def transfer_time_s(spec: DeviceSpec, nbytes: int) -> float:
    """Time to move ``nbytes`` between host and device, one direction."""
    if nbytes <= 0:
        return spec.memory.link_latency_us * 1e-6
    bw = spec.memory.link_bandwidth_gbs * 1e9
    return spec.memory.link_latency_us * 1e-6 + nbytes / bw


def round_trip_time_s(spec: DeviceSpec, bytes_to_device: int, bytes_from_device: int) -> float:
    """Write inputs then read results (no overlap, as in the benchmarks)."""
    return transfer_time_s(spec, bytes_to_device) + transfer_time_s(spec, bytes_from_device)
