"""Timing-noise model.

Real measurements scatter: DVFS, OS scheduling, cache/TLB pollution and
SMI events perturb kernel timings.  The paper handles this with the
2-second loop rule and 50 samples per group, and observes that the
coefficient of variation is larger on lower-clocked devices regardless
of accelerator type (§5.1) — a fixed amount of OS jitter is a larger
*fraction* of a cycle-count on a slow clock.

Model: multiplicative lognormal noise with per-device sigma
(:attr:`RuntimeModel.base_cov`, already scaled inversely with clock in
the catalog), plus a rare additive "noise spike" tail representing OS
preemption.  Looping a measurement for ``loop_iterations`` averages the
lognormal part down by ``sqrt(n)``, which is exactly why the 2-second
loop rule tightens the distributions (ablation bench).
"""

from __future__ import annotations

import numpy as np

from ..devices.specs import DeviceSpec

#: Probability that a sample is hit by an OS preemption spike.
SPIKE_PROBABILITY = 0.02

#: Spike magnitude range as a multiple of the nominal time.
SPIKE_RANGE = (1.2, 2.5)


def noisy_samples(
    spec: DeviceSpec,
    nominal_s: float,
    n_samples: int,
    rng: np.random.Generator,
    loop_iterations: int = 1,
) -> np.ndarray:
    """Draw ``n_samples`` noisy measurements of a ``nominal_s`` kernel.

    ``loop_iterations`` is how many back-to-back executions each sample
    averages over (the 2-second loop rule); averaging narrows the
    lognormal scatter by ``sqrt(loop_iterations)`` while leaving the
    mean unchanged.
    """
    if nominal_s < 0:
        raise ValueError("nominal time must be non-negative")
    if n_samples <= 0:
        return np.empty(0)
    cov = spec.runtime.base_cov / np.sqrt(max(loop_iterations, 1))
    # lognormal with unit mean: mu = -sigma^2/2
    sigma = np.sqrt(np.log1p(cov**2))
    factors = rng.lognormal(mean=-sigma**2 / 2.0, sigma=sigma, size=n_samples)
    samples = nominal_s * factors
    spikes = rng.random(n_samples) < SPIKE_PROBABILITY / max(loop_iterations, 1)
    if spikes.any():
        magnitude = rng.uniform(*SPIKE_RANGE, size=int(spikes.sum()))
        samples[spikes] *= magnitude
    return samples


def expected_cov(spec: DeviceSpec, loop_iterations: int = 1) -> float:
    """The model's coefficient of variation for looped measurements."""
    return spec.runtime.base_cov / np.sqrt(max(loop_iterations, 1))
