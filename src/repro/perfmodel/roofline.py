"""Cache-aware roofline timing model.

Combines a :class:`~repro.perfmodel.characterization.KernelProfile`
with a :class:`~repro.devices.DeviceSpec` to predict the execution time
of one kernel launch:

``t = launch + max(t_compute, t_memory) + t_serial``

* ``t_compute`` — fp and int operations at occupancy- and
  divergence-derated throughput;
* ``t_memory`` — pattern-weighted traffic over the bandwidth of the
  cache level holding the working set (compute and memory overlap, so
  the body takes the max of the two);
* ``t_serial`` — Amdahl term executed at single-lane scalar rate (low
  GPU clocks make this term relatively more painful there);
* ``launch`` — fixed + per-work-group dispatch overhead.

This is intentionally an *analytic* model: the goal is to reproduce the
relative shapes the paper reports (which device class wins where, and
how that changes with problem size), not cycle-accurate simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..devices.specs import DeviceSpec
from .characterization import KernelProfile
from .launch import launch_overhead_s
from .memory import memory_time_s
from .occupancy import bandwidth_utilization, compute_utilization, divergence_factor

#: Scalar operations a single lane retires per cycle for the serial term.
_SCALAR_OPS_PER_CYCLE = 2.0


@dataclass(frozen=True)
class TimeBreakdown:
    """Predicted composition of a kernel's execution time (seconds).

    ``total`` covers all launches of the kernel within one benchmark
    iteration; the component fields are per the same total.

    ``body_override_s`` is set when this record aggregates several
    kernels: the body of a sequence is the *sum of per-kernel bodies*,
    not the max of the summed components (a compute-bound kernel
    followed by a memory-bound one does not overlap across the launch
    boundary).
    """

    compute_s: float
    memory_s: float
    serial_s: float
    launch_s: float
    launches: int
    body_override_s: float | None = None

    @property
    def body_s(self) -> float:
        """Kernel body time (compute/memory overlap + serial tail)."""
        if self.body_override_s is not None:
            return self.body_override_s
        return max(self.compute_s, self.memory_s) + self.serial_s

    @property
    def total_s(self) -> float:
        return self.body_s + self.launch_s

    @property
    def bound(self) -> str:
        """Which term dominates the kernel body: 'compute' or 'memory'."""
        return "compute" if self.compute_s >= self.memory_s else "memory"

    @property
    def utilization(self) -> float:
        """Fraction of time the execution units are busy (for energy)."""
        if self.total_s <= 0:
            return 0.0
        busy = max(self.compute_s, self.memory_s * 0.35) + self.serial_s
        return min(1.0, busy / self.total_s)


def compute_time_s(spec: DeviceSpec, profile: KernelProfile) -> float:
    """Time for the arithmetic of one launch (no memory, no overhead)."""
    util = compute_utilization(spec, profile.work_items)
    eff_flops = spec.compute.fp32_gflops * 1e9 * spec.compute.efficiency * util
    eff_intops = eff_flops * spec.compute.int_ratio
    t = 0.0
    if profile.flops:
        t += profile.flops / eff_flops
    if profile.int_ops:
        t += profile.int_ops / eff_intops
    return t * divergence_factor(spec, profile.branch_fraction)


def serial_time_s(spec: DeviceSpec, profile: KernelProfile) -> float:
    """Time for the non-parallelisable critical path of one launch."""
    if profile.serial_ops <= 0:
        return 0.0
    rate = spec.clock_ghz * 1e9 * _SCALAR_OPS_PER_CYCLE
    return profile.serial_ops / rate


def chain_capacity(spec: DeviceSpec) -> int:
    """Dependent chains the device advances concurrently.

    GPUs run one chain per resident lane; CPUs/MIC run one per hardware
    thread (SIMD lanes do not help a dependent scalar chain).
    """
    from ..ocl.types import DeviceType

    if spec.device_type == DeviceType.GPU:
        return max(spec.compute.parallel_lanes, 1)
    lanes_per_thread = max(1, spec.compute.simd_width_bits // 32)
    return max(1, spec.compute.parallel_lanes // lanes_per_thread)


def chain_time_s(spec: DeviceSpec, profile: KernelProfile) -> float:
    """Time for per-work-item dependent chains of one launch.

    Each work item must step through ``chain_ops`` dependent operations
    at the device's chain-step latency; the device overlaps at most
    :func:`chain_capacity` chains, so the chains execute in
    ``ceil(work_items / capacity)`` rounds.
    """
    if profile.chain_ops <= 0:
        return 0.0
    step_s = spec.compute.chain_latency_cycles / (spec.clock_ghz * 1e9)
    rounds = math.ceil(profile.work_items / chain_capacity(spec))
    return profile.chain_ops * step_s * rounds


def kernel_time(spec: DeviceSpec, profile: KernelProfile) -> TimeBreakdown:
    """Predict the time of all launches of ``profile`` on ``spec``."""
    n = profile.launches
    t_compute = compute_time_s(spec, profile) * n
    t_mem = memory_time_s(
        spec,
        profile.bytes_total,
        profile.working_set_bytes,
        profile.seq_fraction,
        profile.strided_fraction,
        profile.random_fraction,
        bandwidth_utilization(spec, profile.work_items),
    ) * n
    t_serial = (serial_time_s(spec, profile) + chain_time_s(spec, profile)) * n
    t_launch = launch_overhead_s(spec, profile.work_groups,
                                 profile.working_set_bytes) * n
    return TimeBreakdown(
        compute_s=t_compute,
        memory_s=t_mem,
        serial_s=t_serial,
        launch_s=t_launch,
        launches=n,
    )


def iteration_time(spec: DeviceSpec, profiles: list[KernelProfile]) -> TimeBreakdown:
    """Aggregate prediction for one benchmark iteration.

    A benchmark iteration may enqueue several distinct kernels (the
    paper sums all device compute time per iteration, §5.1); we model
    them as executing back to back.
    """
    return sum_breakdowns([kernel_time(spec, p) for p in profiles])


def sum_breakdowns(parts: list[TimeBreakdown]) -> TimeBreakdown:
    """Sum several breakdowns, preserving per-part body times."""
    return TimeBreakdown(
        compute_s=sum(p.compute_s for p in parts),
        memory_s=sum(p.memory_s for p in parts),
        serial_s=sum(p.serial_s for p in parts),
        launch_s=sum(p.launch_s for p in parts),
        launches=sum(p.launches for p in parts),
        body_override_s=sum(p.body_s for p in parts),
    )
