"""Kernel workload characterization.

A :class:`KernelProfile` is an architecture-independent description of
one kernel launch: how many floating-point and integer operations it
performs, how many bytes it moves with which access pattern, how much
parallelism it exposes and how much of it is serial.  The analytic
performance model (:mod:`repro.perfmodel.roofline`) combines a profile
with a :class:`~repro.devices.DeviceSpec` to predict execution time.

This mirrors the paper's AIWC (Architecture Independent Workload
Characterization) methodology mentioned in §7: kernel structure is
captured once, then explains runtime differences between devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class KernelProfile:
    """Architecture-independent description of one kernel launch.

    Parameters
    ----------
    name:
        Kernel identifier (matches the OpenCL kernel name).
    flops:
        Floating-point operations per launch.
    int_ops:
        Integer / bitwise / comparison operations per launch.
    bytes_read, bytes_written:
        Unique data volume moved per launch, before any cache-line
        amplification (the memory model applies amplification for
        non-sequential patterns).
    working_set_bytes:
        Resident set the kernel touches repeatedly; decides which cache
        level the traffic is served from.
    work_items:
        Global NDRange size (total work items).
    work_groups:
        Number of work groups dispatched.
    seq_fraction, strided_fraction, random_fraction:
        Partition of the memory traffic by access pattern.  Must sum to
        1.  *Sequential* is unit-stride streaming; *strided* is a small
        constant stride (CPU prefetchers mostly hide it, GPUs lose
        coalescing); *random* is data-dependent/indexed access.
    branch_fraction:
        Fraction of operations control-dependent on data (divergence).
    serial_ops:
        Operations on the critical path that cannot be parallelised
        (Amdahl term), executed at single-lane scalar rate.
    chain_ops:
        Dependent operations *per work item* forming a latency chain
        (e.g. the byte loop of table-driven CRC: each step needs the
        previous CRC value).  Executed at the device's chain-step
        latency; extra lanes only help across items, never within one.
    launches:
        Number of times this kernel is enqueued per benchmark iteration
        (e.g. one per wavefront diagonal in ``nw``).

    All operation/byte quantities are **per launch**; aggregate
    profiles must divide totals by ``launches``.
    """

    name: str
    flops: float
    int_ops: float
    bytes_read: float
    bytes_written: float
    working_set_bytes: float
    work_items: int
    work_groups: int = 0
    seq_fraction: float = 1.0
    strided_fraction: float = 0.0
    random_fraction: float = 0.0
    branch_fraction: float = 0.0
    serial_ops: float = 0.0
    chain_ops: float = 0.0
    launches: int = 1

    def __post_init__(self):
        total = self.seq_fraction + self.strided_fraction + self.random_fraction
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ValueError(
                f"access-pattern fractions must sum to 1, got {total} for {self.name!r}"
            )
        if self.work_items <= 0:
            raise ValueError(f"work_items must be positive, got {self.work_items}")
        if self.work_groups == 0:
            # default work-group size of 64 (a wavefront), as used by the
            # portable OpenDwarfs kernels
            object.__setattr__(self, "work_groups", max(1, self.work_items // 64))
        for attr in ("flops", "int_ops", "bytes_read", "bytes_written",
                     "working_set_bytes", "serial_ops", "chain_ops"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.launches < 1:
            raise ValueError("launches must be >= 1")

    @property
    def bytes_total(self) -> float:
        """Total unique traffic per launch."""
        return self.bytes_read + self.bytes_written

    @property
    def total_ops(self) -> float:
        """All operations per launch (fp + int)."""
        return self.flops + self.int_ops

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of unique traffic (the roofline x-axis)."""
        if self.bytes_total == 0:
            return math.inf
        return self.flops / self.bytes_total

    def scaled(self, launches: int) -> "KernelProfile":
        """A copy of this profile enqueued ``launches`` times."""
        return replace(self, launches=launches)


def static_profiles(bench: object) -> list[KernelProfile]:
    """Kernel profiles derived statically from the benchmark's IR.

    The source-only twin of ``Benchmark.profiles()``: the static AIWC
    stage (:mod:`repro.analysis.staticaiwc`) interprets the
    benchmark's :class:`~repro.dwarfs.base.StaticLaunchModel` and
    synthesizes one profile per kernel, so the analytic model and the
    scheduler can price a kernel that has never run.  Raises
    ``ValueError`` when the benchmark ships no static launch model.
    """
    from ..analysis.staticaiwc import profiles_from_model

    model = bench.static_launches()  # type: ignore[attr-defined]
    if model is None:
        raise ValueError(
            f"{bench.name} has no static launch model"  # type: ignore[attr-defined]
            " to derive profiles from")
    return profiles_from_model(model)


def merge_working_set(profiles: list[KernelProfile]) -> float:
    """Combined working set of a group of kernels sharing buffers.

    Used by the sizing verifier: the benchmark's device-side footprint
    is the maximum of the per-kernel working sets (buffers are shared,
    not duplicated, between kernels of one benchmark).
    """
    if not profiles:
        return 0.0
    return max(p.working_set_bytes for p in profiles)
