"""Analytic device performance model.

Predicts kernel execution time, energy and host-device transfer cost
for any :class:`~repro.devices.DeviceSpec` from an architecture-
independent :class:`KernelProfile`.  See DESIGN.md §2 for why an
analytic model substitutes for the paper's physical testbed.
"""

from .characterization import KernelProfile, merge_working_set
from .energy import EnergySample, energy_joules, kernel_energy, mean_power_w
from .launch import launch_overhead_s, total_launch_overhead_s
from .memory import (
    memory_level_parallelism,
    memory_time_s,
    random_bandwidth_gbs,
    sequential_bandwidth_gbs,
    strided_bandwidth_gbs,
)
from .noise import expected_cov, noisy_samples
from .occupancy import bandwidth_utilization, compute_utilization, divergence_factor
from .roofline import TimeBreakdown, iteration_time, kernel_time, sum_breakdowns
from .rooflineplot import (
    Ceiling,
    KernelPoint,
    device_ceilings,
    kernel_point,
    render_roofline_html,
    ridge_point,
    save_roofline_html,
    suite_points,
)
from .transfer import round_trip_time_s, transfer_time_s

__all__ = [
    "Ceiling",
    "KernelPoint",
    "device_ceilings",
    "kernel_point",
    "render_roofline_html",
    "ridge_point",
    "save_roofline_html",
    "suite_points",
    "EnergySample",
    "KernelProfile",
    "TimeBreakdown",
    "bandwidth_utilization",
    "compute_utilization",
    "divergence_factor",
    "energy_joules",
    "expected_cov",
    "iteration_time",
    "kernel_energy",
    "kernel_time",
    "launch_overhead_s",
    "mean_power_w",
    "memory_level_parallelism",
    "memory_time_s",
    "merge_working_set",
    "noisy_samples",
    "random_bandwidth_gbs",
    "round_trip_time_s",
    "sequential_bandwidth_gbs",
    "strided_bandwidth_gbs",
    "sum_breakdowns",
    "total_launch_overhead_s",
    "transfer_time_s",
]
