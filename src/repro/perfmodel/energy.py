"""Energy model: RAPL- and NVML-style kernel energy estimation.

The paper measures kernel energy on the Skylake i7-6700K via the RAPL
PAPI module (``rapl:::PP0_ENERGY:PACKAGE0``, cores only, nJ resolution)
and on the GTX 1080 via NVML power readings (whole board, mW, ±5 W).

Model: the device draws an idle floor plus a dynamic share of TDP
proportional to execution-unit utilisation::

    P = TDP * (idle_fraction + utilisation * (max_fraction - idle_fraction))
    E = P * t

The CPU-vs-GPU ordering of Fig. 5 (CPU uses more energy for every
benchmark except ``crc``) follows directly: GPUs finish the
floating-point-heavy kernels so much faster that their higher board
power is more than amortised, while ``crc``'s integer kernel runs
faster — and therefore cheaper — on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.specs import DeviceSpec
from .roofline import TimeBreakdown


@dataclass(frozen=True)
class EnergySample:
    """One kernel-execution energy measurement."""

    energy_j: float
    mean_power_w: float
    duration_s: float


def mean_power_w(spec: DeviceSpec, utilization: float) -> float:
    """Average power draw at the given execution-unit utilisation."""
    util = min(max(utilization, 0.0), 1.0)
    p = spec.power
    return spec.power.tdp_w * (p.idle_fraction + util * (p.max_fraction - p.idle_fraction))


def kernel_energy(spec: DeviceSpec, breakdown: TimeBreakdown) -> EnergySample:
    """Energy of a kernel execution described by ``breakdown``."""
    power = mean_power_w(spec, breakdown.utilization)
    t = breakdown.total_s
    return EnergySample(energy_j=power * t, mean_power_w=power, duration_s=t)


def energy_joules(spec: DeviceSpec, duration_s: float, utilization: float) -> float:
    """Energy for an arbitrary duration at a fixed utilisation."""
    return mean_power_w(spec, utilization) * duration_s
