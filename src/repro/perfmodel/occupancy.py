"""Occupancy model: how much of a device a kernel can actually use.

Wide devices (a Titan X has 3584 lanes and wants ~4x that many work
items in flight) are starved by small NDRanges; this is why *tiny*
problems run comparatively better on CPUs and why the CPU-GPU gap
widens with problem size for bandwidth-bound dwarfs (paper Fig. 3a).
"""

from __future__ import annotations

from ..devices.specs import DeviceSpec

#: Utilisation never drops below this: even one work item keeps one
#: lane busy and the runtime schedules something.
_MIN_UTILISATION = 1e-4


def compute_utilization(spec: DeviceSpec, work_items: int) -> float:
    """Fraction of peak compute throughput reachable with ``work_items``.

    Ramps sub-linearly (exponent 0.9) up to the device's saturation
    point: doubling occupancy does not quite double throughput because
    scheduling slack also grows.
    """
    if work_items <= 0:
        return _MIN_UTILISATION
    ratio = work_items / spec.compute.saturation_items
    if ratio >= 1.0:
        return 1.0
    return max(ratio**0.9, _MIN_UTILISATION)


def bandwidth_utilization(spec: DeviceSpec, work_items: int) -> float:
    """Fraction of peak memory bandwidth reachable with ``work_items``.

    The memory system saturates with far fewer threads than the compute
    units (a handful of streaming work groups can fill the bus), so the
    knee sits at ``saturation_items / 8`` and the ramp is gentler
    (square root).
    """
    if work_items <= 0:
        return _MIN_UTILISATION
    knee = max(1.0, spec.compute.saturation_items / 8.0)
    ratio = work_items / knee
    if ratio >= 1.0:
        return 1.0
    return max(ratio**0.5, _MIN_UTILISATION)


def divergence_factor(spec: DeviceSpec, branch_fraction: float) -> float:
    """Compute-time multiplier due to divergent branching.

    ``branch_fraction`` of the work pays the device's divergence
    penalty (SIMT GPUs serialise both branch paths; CPUs mispredict).
    """
    bf = min(max(branch_fraction, 0.0), 1.0)
    return 1.0 + bf * (spec.compute.divergence_penalty - 1.0)
