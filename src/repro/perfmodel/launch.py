"""Kernel launch / dispatch overhead model.

Every ``clEnqueueNDRangeKernel`` pays a fixed runtime cost (argument
marshalling, command-buffer submission, doorbell) plus a small per-
work-group dispatch cost.  These costs are invisible for long kernels
but *dominate* wavefront codes such as Needleman-Wunsch, which enqueue
one kernel per anti-diagonal: thousands of launches of microsecond
kernels.  The per-vendor gap in this overhead (AMD's runtime being the
slowest of the three) is what reproduces Fig. 3b's AMD divergence.
"""

from __future__ import annotations

from ..devices.specs import DeviceSpec


def launch_overhead_s(spec: DeviceSpec, work_groups: int,
                      buffer_bytes: float = 0.0) -> float:
    """Overhead of one kernel enqueue, in seconds.

    ``buffer_bytes`` is the footprint of the buffers bound to the
    kernel; runtimes that revalidate memory objects per enqueue (AMD
    APP) charge :attr:`RuntimeModel.launch_ns_per_mib` for it.
    """
    fixed = spec.runtime.kernel_launch_us * 1e-6
    dispatch = spec.runtime.dispatch_ns_per_group * 1e-9 * max(work_groups, 1)
    validate = spec.runtime.launch_ns_per_mib * 1e-9 * (buffer_bytes / (1 << 20))
    return fixed + dispatch + validate


def total_launch_overhead_s(spec: DeviceSpec, work_groups: int, launches: int,
                            buffer_bytes: float = 0.0) -> float:
    """Overhead of ``launches`` consecutive enqueues of the same kernel."""
    return launch_overhead_s(spec, work_groups, buffer_bytes) * max(launches, 1)
