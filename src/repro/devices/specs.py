"""Device specification records.

:class:`DeviceSpec` captures everything the harness and performance
model need to know about a compute device:

* the columns of Table 1 of the paper (vendor, type, series, core count,
  clock range, cache sizes, TDP, launch date); and
* microarchitectural parameters (SIMD width, memory bandwidth, cache
  latencies, kernel launch overhead, PCIe link characteristics) taken
  from public specification sheets, which drive the analytic
  performance model.

These records are plain frozen dataclasses so the catalog is hashable,
comparable and safe to share between threads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ocl.types import DeviceType


class DeviceClass(enum.Enum):
    """Accelerator class used to colour the paper's figures."""

    CPU = "CPU"
    CONSUMER_GPU = "Consumer GPU"
    HPC_GPU = "HPC GPU"
    MIC = "MIC"


class Vendor(enum.Enum):
    """Hardware vendor; determines the OpenCL driver model used."""

    INTEL = "Intel"
    NVIDIA = "Nvidia"
    AMD = "AMD"


@dataclass(frozen=True)
class CacheLevel:
    """One level of the on-chip cache hierarchy.

    Parameters
    ----------
    size_kib:
        Capacity in KiB.  For CPUs the L1 figure is the *data* cache
        (the instruction cache is the same size, as in Table 1).
    latency_ns:
        Load-to-use latency for a hit in this level.
    bandwidth_gbs:
        Sustained bandwidth when the working set resides in this level.
    line_bytes:
        Cache line size.
    associativity:
        Way count used by the cache simulator.
    """

    size_kib: int
    latency_ns: float
    bandwidth_gbs: float
    line_bytes: int = 64
    associativity: int = 8

    @property
    def size_bytes(self) -> int:
        return self.size_kib * 1024


@dataclass(frozen=True)
class MemorySystem:
    """Off-chip memory and host-link characteristics."""

    #: Sustained main (global) memory bandwidth, GB/s.
    bandwidth_gbs: float
    #: Main memory access latency, ns.
    latency_ns: float
    #: Global memory capacity, MiB.  All paper problem sizes fit in
    #: every device's global memory (paper §5.1).
    size_mib: int
    #: Host<->device link bandwidth, GB/s (PCIe for discrete devices;
    #: effectively memory bandwidth for CPUs, where no copy crosses a bus).
    link_bandwidth_gbs: float
    #: Host<->device link latency, us.
    link_latency_us: float


@dataclass(frozen=True)
class ComputeEngine:
    """Raw execution-resource description used by the roofline model."""

    #: Hardware parallel lanes: CUDA cores / stream processors for GPUs,
    #: hardware threads x SIMD lanes for CPUs.
    parallel_lanes: int
    #: Single-precision peak, GFLOP/s (2 ops/FMA already folded in).
    fp32_gflops: float
    #: Integer/bitwise op throughput relative to fp32 throughput.
    #: CPUs execute scalar integer code well (>1 per lane per cycle);
    #: GPUs dispatch 32-bit integer ops at a fraction of FP rate.
    int_ratio: float
    #: SIMD width in bits actually usable from the OpenCL driver.  The
    #: paper notes Intel's SDK is limited to 256-bit vectors on KNL,
    #: halving its theoretical peak.
    simd_width_bits: int
    #: Fraction of peak typically sustained by portable OpenCL kernels.
    efficiency: float
    #: Minimum work items needed to saturate the device (occupancy knee).
    saturation_items: int
    #: Branch-divergence penalty factor for data-dependent branching
    #: (1.0 = none; SIMT GPUs pay more than CPUs).
    divergence_penalty: float
    #: Latency in cycles of one step of a dependent operation chain
    #: (e.g. the load->xor->index chain of table-driven CRC).  Out-of-
    #: order CPUs sustain ~1 L1-load chain step per few cycles; GPUs
    #: pay tens of cycles per dependent step and cannot hide them
    #: within a single work item.
    chain_latency_cycles: float = 4.0


@dataclass(frozen=True)
class RuntimeModel:
    """Driver/runtime behaviour that is visible in kernel timings."""

    #: Fixed cost to launch one kernel, us.  Dominates wavefront-style
    #: codes (nw) that launch thousands of tiny kernels.
    kernel_launch_us: float
    #: Additional per-launch cost that scales with the number of
    #: work-groups, ns per group (driver dispatch bookkeeping).
    dispatch_ns_per_group: float
    #: Baseline coefficient of variation of repeated kernel timings on
    #: this device at its maximum clock (OS noise, DVFS, scheduling).
    base_cov: float
    #: Per-launch cost proportional to the bound-buffer footprint,
    #: ns per MiB.  The AMD APP runtime revalidates memory objects on
    #: every enqueue, so its launch cost grows with problem size —
    #: the mechanism behind the widening AMD gap on ``nw`` (Fig. 3b).
    launch_ns_per_mib: float = 0.0


@dataclass(frozen=True)
class PowerModel:
    """Parameters of the RAPL/NVML-style energy model."""

    #: Thermal design power, W (Table 1).
    tdp_w: float
    #: Fraction of TDP drawn when idle but active-clocked.
    idle_fraction: float
    #: Fraction of TDP reached at full utilisation (boards rarely
    #: sustain exactly TDP in compute kernels).
    max_fraction: float


@dataclass(frozen=True)
class DeviceSpec:
    """Complete description of one benchmarkable device.

    The first block of fields reproduces Table 1 of the paper; the rest
    parameterise the performance, cache and power models.
    """

    # --- Table 1 columns -------------------------------------------------
    name: str
    vendor: Vendor
    device_type: DeviceType
    series: str
    core_count: int
    core_count_note: str  # footnote marker text from Table 1
    clock_min_mhz: int
    clock_max_mhz: int
    clock_turbo_mhz: int | None
    tdp_w: int
    launch_date: str

    # --- model parameters -------------------------------------------------
    device_class: DeviceClass
    caches: tuple[CacheLevel, ...]
    memory: MemorySystem
    compute: ComputeEngine
    runtime: RuntimeModel
    power: PowerModel
    opencl_driver: str = "OpenCL 1.2"
    extra: dict = field(default_factory=dict, compare=False, hash=False)

    # ----------------------------------------------------------------------
    @property
    def clock_ghz(self) -> float:
        """Sustained clock in GHz (max non-turbo, as kernels run long)."""
        return self.clock_max_mhz / 1000.0

    @property
    def is_cpu(self) -> bool:
        return self.device_type == DeviceType.CPU

    @property
    def is_gpu(self) -> bool:
        return self.device_type == DeviceType.GPU

    @property
    def last_level_cache(self) -> CacheLevel:
        """The largest/outermost cache level."""
        return self.caches[-1]

    @property
    def cache_sizes_kib(self) -> tuple[int, ...]:
        """Cache sizes as displayed in Table 1 (L1/L2/L3; GPU has no L3)."""
        return tuple(c.size_kib for c in self.caches)

    def cache_level_for(self, working_set_bytes: int) -> int:
        """Index of the innermost cache level that holds ``working_set_bytes``.

        Returns ``len(self.caches)`` when the working set spills to main
        memory.  Level indices are 0-based (0 == L1).
        """
        for i, level in enumerate(self.caches):
            if working_set_bytes <= level.size_bytes:
                return i
        return len(self.caches)

    #: Fraction of last-level-cache capacity at which the soft knee
    #: begins: beyond it a growing share of accesses spill to memory
    #: (conflict misses, shared-cache pollution).  Inner levels keep
    #: sharp knees — they are private and the problem sizes are chosen
    #: to sit clearly inside or outside them.
    LLC_SOFT_KNEE_START = 0.75
    LLC_SOFT_KNEE_END = 1.10

    def effective_bandwidth_gbs(self, working_set_bytes: int) -> float:
        """Sustained bandwidth for a streaming access pattern whose
        working set is ``working_set_bytes``.

        The heart of the cache-aware roofline: a working set resident
        in L1 streams at L1 bandwidth, one spilling to memory at
        main-memory bandwidth.  Inner-level transitions are sharp; the
        *last* level has a soft knee from ~75% of capacity — this is
        what makes the 6 MiB-L3 i5-3550 suffer on *medium* problems
        sized for an 8 MiB L3 even when they nominally fit (paper
        Figures 2b/2d/2e).
        """
        level = self.cache_level_for(working_set_bytes)
        if level >= len(self.caches):
            return self.memory.bandwidth_gbs
        bandwidth = self.caches[level].bandwidth_gbs
        if level == len(self.caches) - 1:
            capacity = self.caches[level].size_bytes
            start = self.LLC_SOFT_KNEE_START * capacity
            end = self.LLC_SOFT_KNEE_END * capacity
            if working_set_bytes > start:
                miss_fraction = min((working_set_bytes - start) / (end - start),
                                    1.0)
                # time per byte blends harmonically with memory bandwidth
                per_byte = ((1.0 - miss_fraction) / bandwidth
                            + miss_fraction / self.memory.bandwidth_gbs)
                return 1.0 / per_byte
        return bandwidth

    def effective_latency_ns(self, working_set_bytes: int) -> float:
        """Access latency for a working set of the given size."""
        level = self.cache_level_for(working_set_bytes)
        if level >= len(self.caches):
            return self.memory.latency_ns
        return self.caches[level].latency_ns

    def table1_row(self) -> dict:
        """The device rendered as a row of the paper's Table 1."""
        turbo = str(self.clock_turbo_mhz) if self.clock_turbo_mhz else "–"
        sizes = "/".join(str(k) for k in self.cache_sizes_kib)
        if len(self.caches) == 2:
            sizes += "/–"
        kind = {
            DeviceType.CPU: "CPU",
            DeviceType.GPU: "GPU",
            DeviceType.ACCELERATOR: "MIC",
        }[self.device_type]
        return {
            "Name": self.name,
            "Vendor": self.vendor.value,
            "Type": kind,
            "Series": self.series,
            "CoreCount": f"{self.core_count}{self.core_count_note}",
            "Clock Frequency (MHz)": f"{self.clock_min_mhz}/{self.clock_max_mhz}/{turbo}",
            "Cache (KiB)": sizes,
            "TDP (W)": self.tdp_w,
            "Launch Date": self.launch_date,
        }
