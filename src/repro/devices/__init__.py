"""Device catalog: the fifteen platforms of the paper's Table 1.

Public API::

    from repro.devices import CATALOG, get_device, DeviceClass

    skylake = get_device("i7-6700K")
    gpus = devices_by_class(DeviceClass.CONSUMER_GPU)
"""

from .catalog import CATALOG, build_catalog, device_names, devices_by_class, get_device
from .specs import (
    CacheLevel,
    ComputeEngine,
    DeviceClass,
    DeviceSpec,
    MemorySystem,
    PowerModel,
    RuntimeModel,
    Vendor,
)

__all__ = [
    "CATALOG",
    "CacheLevel",
    "ComputeEngine",
    "DeviceClass",
    "DeviceSpec",
    "MemorySystem",
    "PowerModel",
    "RuntimeModel",
    "Vendor",
    "build_catalog",
    "device_names",
    "devices_by_class",
    "get_device",
]
