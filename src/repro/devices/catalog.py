"""The fifteen benchmark platforms of the paper's Table 1.

Each entry reproduces the published Table 1 columns exactly, and adds
the microarchitectural parameters (public spec-sheet values) that drive
the analytic performance model: peak FLOP rate, memory bandwidth, cache
latencies/bandwidths, kernel-launch overhead and the power envelope.

Calibration notes
-----------------
* CPU fp32 peak = physical cores x clock x SIMD lanes x FMA factor.
* GPU fp32 peak = 2 x shader cores x clock (the usual 2-op FMA count).
* The Xeon Phi 7210 peak is *halved* relative to AVX-512 because the
  Intel OpenCL SDK only emits 256-bit vectors on KNL (paper §4.2); its
  runtime efficiency is further derated, matching the paper's
  observation that KNL OpenCL performance is poor.
* AMD's OpenCL runtime carries a noticeably higher per-kernel launch
  cost than NVIDIA's; this is what makes AMD devices fall behind on the
  launch-dominated ``nw`` wavefront benchmark as problem size (and thus
  launch count) grows (paper Fig. 3b).
* The R9 295x2 is a dual-Hawaii board; OpenCL enqueues to one of the
  two GPUs, so its model parameters match a single R9 290X at a
  slightly higher clock, although Table 1 lists the combined shader
  count.  (The paper's results for the 295x2 track the 290X closely.)
"""

from __future__ import annotations

from ..ocl.types import DeviceType
from .specs import (
    CacheLevel,
    ComputeEngine,
    DeviceClass,
    DeviceSpec,
    MemorySystem,
    PowerModel,
    RuntimeModel,
    Vendor,
)

# Reference clock for the timing-noise model: the paper observes that the
# coefficient of variation is larger on lower-clocked devices regardless
# of accelerator type; we scale a common baseline CoV inversely with clock.
_COV_AT_1GHZ = 0.055


def _cov(clock_mhz: int) -> float:
    return _COV_AT_1GHZ / (clock_mhz / 1000.0)


def _cpu(
    *,
    name: str,
    series: str,
    hyperthreads: int,
    physical_cores: int,
    clock: tuple[int, int, int | None],
    l1_kib: int,
    l2_kib: int,
    l3_kib: int,
    tdp_w: int,
    launch: str,
    mem_bw_gbs: float,
    simd_lanes_fp32: int,
    fma: bool,
    driver: str = "Intel OpenCL 6.3 (16.1.1, 2016-R3 SDK)",
) -> DeviceSpec:
    clock_ghz = clock[1] / 1000.0
    # FMA cores (Haswell+) retire 2 FMAs x 8 lanes x 2 flops = 32
    # flops/cycle; pre-FMA AVX cores dual-issue mul+add for 16.
    fma_factor = 4.0 if fma else 2.0
    fp32 = physical_cores * clock_ghz * simd_lanes_fp32 * fma_factor
    # Aggregate cache bandwidths: L1 streams a cache line per core per
    # cycle; outer levels fall off roughly 2x per level.
    l1_bw = physical_cores * clock_ghz * 64.0
    l2_bw = l1_bw / 2.0
    l3_bw = max(l1_bw / 4.0, mem_bw_gbs * 2.5)
    return DeviceSpec(
        name=name,
        vendor=Vendor.INTEL,
        device_type=DeviceType.CPU,
        series=series,
        core_count=hyperthreads,
        core_count_note="*",
        clock_min_mhz=clock[0],
        clock_max_mhz=clock[1],
        clock_turbo_mhz=clock[2],
        tdp_w=tdp_w,
        launch_date=launch,
        device_class=DeviceClass.CPU,
        caches=(
            CacheLevel(l1_kib, latency_ns=4 / clock_ghz, bandwidth_gbs=l1_bw, associativity=8),
            CacheLevel(l2_kib, latency_ns=12 / clock_ghz, bandwidth_gbs=l2_bw, associativity=8),
            CacheLevel(l3_kib, latency_ns=40 / clock_ghz, bandwidth_gbs=l3_bw, associativity=16),
        ),
        memory=MemorySystem(
            bandwidth_gbs=mem_bw_gbs,
            latency_ns=85.0,
            size_mib=32768,
            link_bandwidth_gbs=mem_bw_gbs,  # no PCIe hop for CPU "transfers"
            link_latency_us=0.5,
        ),
        compute=ComputeEngine(
            parallel_lanes=hyperthreads * simd_lanes_fp32,
            fp32_gflops=fp32,
            int_ratio=2.0,
            simd_width_bits=simd_lanes_fp32 * 32,
            efficiency=0.55,
            saturation_items=hyperthreads * simd_lanes_fp32,
            divergence_penalty=1.15,
            chain_latency_cycles=4.0,
        ),
        runtime=RuntimeModel(
            # launching a "kernel" on the host device is a thread-pool
            # dispatch, far cheaper than a PCIe doorbell
            kernel_launch_us=6.0,
            # the thread pool dispatches work-groups in per-core chunks
            dispatch_ns_per_group=2.0,
            base_cov=_cov(clock[1]),
        ),
        power=PowerModel(tdp_w=tdp_w, idle_fraction=0.35, max_fraction=0.92),
        opencl_driver=driver,
    )


def _gpu(
    *,
    name: str,
    vendor: Vendor,
    series: str,
    cores: int,
    model_lanes: int | None = None,
    clock: tuple[int, int | None],
    l1_kib: int,
    l2_kib: int,
    tdp_w: int,
    launch: str,
    mem_bw_gbs: float,
    mem_mib: int,
    device_class: DeviceClass,
    pcie_gbs: float = 12.0,
    note: str = "",
) -> DeviceSpec:
    lanes = model_lanes if model_lanes is not None else cores
    clock_ghz = (clock[1] or clock[0]) / 1000.0
    fp32 = 2.0 * lanes * clock_ghz
    if vendor == Vendor.NVIDIA:
        launch_us, launch_ns_mib, int_ratio, eff = 10.0, 0.0, 0.35, 0.60
        note_mark = "†"  # dagger: CUDA cores
    else:
        launch_us, launch_ns_mib, int_ratio, eff = 20.0, 100.0, 0.30, 0.50
        note_mark = "∥"  # parallel bars: stream processors
    return DeviceSpec(
        name=name,
        vendor=vendor,
        device_type=DeviceType.GPU,
        series=series,
        core_count=cores,
        core_count_note=note_mark,
        clock_min_mhz=clock[0],
        clock_max_mhz=clock[1] or clock[0],
        clock_turbo_mhz=None,
        tdp_w=tdp_w,
        launch_date=launch,
        device_class=device_class,
        caches=(
            CacheLevel(l1_kib, latency_ns=28.0, bandwidth_gbs=mem_bw_gbs * 8.0, associativity=4),
            CacheLevel(l2_kib, latency_ns=150.0, bandwidth_gbs=mem_bw_gbs * 3.0, associativity=16),
        ),
        memory=MemorySystem(
            bandwidth_gbs=mem_bw_gbs,
            latency_ns=350.0,
            size_mib=mem_mib,
            link_bandwidth_gbs=pcie_gbs,
            link_latency_us=10.0,
        ),
        compute=ComputeEngine(
            parallel_lanes=lanes,
            fp32_gflops=fp32,
            int_ratio=int_ratio,
            simd_width_bits=32 * 32,  # one warp/wavefront-ish
            efficiency=eff,
            saturation_items=lanes * 4,
            divergence_penalty=1.6,
            chain_latency_cycles=28.0,
        ),
        runtime=RuntimeModel(
            kernel_launch_us=launch_us,
            # hardware work distributors retire group launches ~per cycle
            dispatch_ns_per_group=0.5,
            launch_ns_per_mib=launch_ns_mib,
            base_cov=_cov(clock[1] or clock[0]),
        ),
        power=PowerModel(tdp_w=tdp_w, idle_fraction=0.22, max_fraction=0.85),
        opencl_driver=(
            "Nvidia OpenCL 375.66 (CUDA 8.0.61)"
            if vendor == Vendor.NVIDIA
            else "AMD APP SDK v3.0"
        ),
        extra={"note": note} if note else {},
    )


def _knl() -> DeviceSpec:
    # Xeon Phi 7210: 64 physical cores x 4 threads = 256 logical.
    # AVX-512 would give 32 fp32 lanes/core, but the Intel OpenCL SDK is
    # limited to 256-bit vectors (8 lanes): half the theoretical peak.
    physical, clock_ghz = 64, 1.3
    lanes = 8
    fp32 = physical * clock_ghz * lanes * 2  # FMA
    mem_bw = 102.0  # DDR4 path; OpenCL allocations do not target MCDRAM
    return DeviceSpec(
        name="Xeon Phi 7210",
        vendor=Vendor.INTEL,
        device_type=DeviceType.ACCELERATOR,
        series="KNL",
        core_count=256,
        core_count_note="‡",
        clock_min_mhz=1300,
        clock_max_mhz=1500,
        clock_turbo_mhz=None,
        tdp_w=215,
        launch_date="Q2 2016",
        device_class=DeviceClass.MIC,
        caches=(
            CacheLevel(32, latency_ns=4 / clock_ghz, bandwidth_gbs=physical * clock_ghz * 64.0),
            CacheLevel(1024, latency_ns=20 / clock_ghz, bandwidth_gbs=physical * clock_ghz * 32.0),
        ),
        memory=MemorySystem(
            bandwidth_gbs=mem_bw,
            latency_ns=150.0,
            size_mib=196608,
            link_bandwidth_gbs=mem_bw,
            link_latency_us=1.0,
        ),
        compute=ComputeEngine(
            parallel_lanes=256 * lanes,
            fp32_gflops=fp32,
            int_ratio=0.8,
            simd_width_bits=256,
            efficiency=0.18,  # poor Intel OpenCL code generation on KNL
            saturation_items=256 * lanes,
            divergence_penalty=1.4,
            # in-order cores + poor OpenCL codegen: dependent chains stall badly
            chain_latency_cycles=56.0,
        ),
        runtime=RuntimeModel(
            kernel_launch_us=80.0,
            dispatch_ns_per_group=10.0,
            base_cov=_cov(1500),
        ),
        power=PowerModel(tdp_w=215, idle_fraction=0.45, max_fraction=0.9),
        opencl_driver="Intel OpenCL 6.3 (2018-R1 compiler)",
    )


def build_catalog() -> tuple[DeviceSpec, ...]:
    """Construct all 15 devices in the paper's Table 1 row order."""
    return (
        _cpu(
            name="Xeon E5-2697 v2", series="Ivy Bridge", hyperthreads=24, physical_cores=12,
            clock=(1200, 2700, 3500), l1_kib=32, l2_kib=256, l3_kib=30720, tdp_w=130,
            launch="Q3 2013", mem_bw_gbs=59.7, simd_lanes_fp32=8, fma=False,
        ),
        _cpu(
            name="i7-6700K", series="Skylake", hyperthreads=8, physical_cores=4,
            clock=(800, 4000, 4300), l1_kib=32, l2_kib=256, l3_kib=8192, tdp_w=91,
            launch="Q3 2015", mem_bw_gbs=34.1, simd_lanes_fp32=8, fma=True,
        ),
        _cpu(
            name="i5-3550", series="Ivy Bridge", hyperthreads=4, physical_cores=4,
            clock=(1600, 3380, 3700), l1_kib=32, l2_kib=256, l3_kib=6144, tdp_w=77,
            launch="Q2 2012", mem_bw_gbs=25.6, simd_lanes_fp32=8, fma=False,
        ),
        _gpu(
            name="Titan X", vendor=Vendor.NVIDIA, series="Pascal", cores=3584,
            clock=(1417, 1531), l1_kib=48, l2_kib=2048, tdp_w=250, launch="Q3 2016",
            mem_bw_gbs=480.0, mem_mib=12288, device_class=DeviceClass.CONSUMER_GPU,
        ),
        _gpu(
            name="GTX 1080", vendor=Vendor.NVIDIA, series="Pascal", cores=2560,
            clock=(1607, 1733), l1_kib=48, l2_kib=2048, tdp_w=180, launch="Q2 2016",
            mem_bw_gbs=320.0, mem_mib=8192, device_class=DeviceClass.CONSUMER_GPU,
        ),
        _gpu(
            name="GTX 1080 Ti", vendor=Vendor.NVIDIA, series="Pascal", cores=3584,
            clock=(1480, 1582), l1_kib=48, l2_kib=2048, tdp_w=250, launch="Q1 2017",
            mem_bw_gbs=484.0, mem_mib=11264, device_class=DeviceClass.CONSUMER_GPU,
        ),
        _gpu(
            name="K20m", vendor=Vendor.NVIDIA, series="Kepler", cores=2496,
            clock=(706, None), l1_kib=64, l2_kib=1536, tdp_w=225, launch="Q4 2012",
            mem_bw_gbs=208.0, mem_mib=5120, device_class=DeviceClass.HPC_GPU,
            pcie_gbs=6.0,
        ),
        _gpu(
            name="K40m", vendor=Vendor.NVIDIA, series="Kepler", cores=2880,
            clock=(745, 875), l1_kib=64, l2_kib=1536, tdp_w=235, launch="Q4 2013",
            mem_bw_gbs=288.0, mem_mib=12288, device_class=DeviceClass.HPC_GPU,
        ),
        _gpu(
            name="FirePro S9150", vendor=Vendor.AMD, series="Hawaii", cores=2816,
            clock=(900, None), l1_kib=16, l2_kib=1024, tdp_w=235, launch="Q3 2014",
            mem_bw_gbs=320.0, mem_mib=16384, device_class=DeviceClass.HPC_GPU,
        ),
        _gpu(
            name="HD 7970", vendor=Vendor.AMD, series="Tahiti", cores=2048,
            clock=(925, 1010), l1_kib=16, l2_kib=768, tdp_w=250, launch="Q4 2011",
            mem_bw_gbs=264.0, mem_mib=3072, device_class=DeviceClass.CONSUMER_GPU,
        ),
        _gpu(
            name="R9 290X", vendor=Vendor.AMD, series="Hawaii", cores=2816,
            clock=(1000, None), l1_kib=16, l2_kib=1024, tdp_w=250, launch="Q3 2014",
            mem_bw_gbs=320.0, mem_mib=4096, device_class=DeviceClass.CONSUMER_GPU,
        ),
        _gpu(
            name="R9 295x2", vendor=Vendor.AMD, series="Hawaii", cores=5632,
            model_lanes=2816, clock=(1018, None), l1_kib=16, l2_kib=1024, tdp_w=500,
            launch="Q2 2014", mem_bw_gbs=320.0, mem_mib=4096,
            device_class=DeviceClass.CONSUMER_GPU,
            note="dual-GPU board; OpenCL kernels execute on one Hawaii die",
        ),
        _gpu(
            name="R9 Fury X", vendor=Vendor.AMD, series="Fuji", cores=4096,
            clock=(1050, None), l1_kib=16, l2_kib=2048, tdp_w=273, launch="Q2 2015",
            mem_bw_gbs=512.0, mem_mib=4096, device_class=DeviceClass.CONSUMER_GPU,
        ),
        _gpu(
            name="RX 480", vendor=Vendor.AMD, series="Polaris", cores=4096,
            model_lanes=2304, clock=(1120, 1266), l1_kib=16, l2_kib=2048, tdp_w=150,
            launch="Q2 2016", mem_bw_gbs=256.0, mem_mib=8192,
            device_class=DeviceClass.CONSUMER_GPU,
            note="Table 1 lists 4096 SPs; the Polaris 10 die has 2304",
        ),
        _knl(),
    )


#: The catalog in Table 1 row order.
CATALOG: tuple[DeviceSpec, ...] = build_catalog()

#: Device lookup by (case-insensitive) name.
_BY_NAME = {spec.name.lower(): spec for spec in CATALOG}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by its Table 1 name (case-insensitive).

    Raises
    ------
    KeyError
        If no device of that name exists in the catalog.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(s.name for s in CATALOG)
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None


def devices_by_class(device_class: DeviceClass) -> tuple[DeviceSpec, ...]:
    """All catalog devices in the given accelerator class."""
    return tuple(s for s in CATALOG if s.device_class == device_class)


def device_names() -> tuple[str, ...]:
    """Catalog device names in Table 1 order."""
    return tuple(s.name for s in CATALOG)
