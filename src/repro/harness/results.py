"""Result collection, grouping and export."""

from __future__ import annotations

import io
from collections import defaultdict

import numpy as np

from ..perfmodel.roofline import TimeBreakdown
from .runner import RunResult


class ResultSet:
    """A collection of :class:`RunResult` with grouping helpers."""

    def __init__(self, results: list[RunResult] | None = None):
        self.results: list[RunResult] = list(results or [])

    def add(self, result: RunResult) -> None:
        """Append one result."""
        self.results.append(result)

    def extend(self, results: list[RunResult]) -> None:
        """Append many results."""
        self.results.extend(results)

    # ------------------------------------------------------------------
    def filter(self, benchmark: str | None = None, size: str | None = None,
               device: str | None = None, device_class: str | None = None
               ) -> "ResultSet":
        """A new set restricted to the given coordinates (None = any)."""
        out = [
            r for r in self.results
            if (benchmark is None or r.benchmark == benchmark)
            and (size is None or r.size == size)
            and (device is None or r.device == device)
            and (device_class is None or r.device_class == device_class)
        ]
        return ResultSet(out)

    def get(self, benchmark: str, size: str, device: str) -> RunResult:
        """The result for one exact cell; raises ``KeyError`` if absent."""
        for r in self.results:
            if (r.benchmark, r.size, r.device) == (benchmark, size, device):
                return r
        raise KeyError(f"no result for ({benchmark}, {size}, {device})")

    def devices(self) -> list[str]:
        """Device names present, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.device, None)
        return list(seen)

    def sizes(self) -> list[str]:
        """Size names present, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.size, None)
        return list(seen)

    # ------------------------------------------------------------------
    def best_device(self, benchmark: str, size: str,
                    device_class: str | None = None) -> RunResult:
        """The fastest device for a group (by mean kernel time)."""
        candidates = self.filter(benchmark=benchmark, size=size,
                                 device_class=device_class).results
        if not candidates:
            raise KeyError(f"no results for ({benchmark}, {size}, {device_class})")
        return min(candidates, key=lambda r: r.mean_ms)

    def class_mean_ms(self, benchmark: str, size: str, device_class: str) -> float:
        """Mean of per-device means within an accelerator class."""
        rs = self.filter(benchmark=benchmark, size=size,
                         device_class=device_class).results
        if not rs:
            raise KeyError(f"no results for ({benchmark}, {size}, {device_class})")
        return float(np.mean([r.mean_ms for r in rs]))

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Long-form CSV: one row per sample.

        The trailing ``tags`` column carries the group-level metadata a
        loader needs to rebuild each :class:`RunResult` — the nominal
        time, loop iterations, validation flag and the
        :class:`~repro.perfmodel.roofline.TimeBreakdown` components —
        rendered ``key=value`` joined with ``;`` (the same single-field
        convention as the recorder CSV from the observability layer).
        :meth:`from_csv` is the matching loader; the pair round-trips.
        """
        out = io.StringIO()
        out.write("benchmark,size,device,device_class,sample,time_s,"
                  "energy_j,tags\n")
        for r in self.results:
            b = r.breakdown
            tags = ";".join(f"{k}={v}" for k, v in (
                ("nominal_s", f"{r.nominal_s:.9g}"),
                ("loop_iterations", r.loop_iterations),
                ("footprint_bytes", r.footprint_bytes),
                ("validated", r.validated),
                ("compute_s", f"{b.compute_s:.9g}"),
                ("memory_s", f"{b.memory_s:.9g}"),
                ("serial_s", f"{b.serial_s:.9g}"),
                ("launch_s", f"{b.launch_s:.9g}"),
                ("launches", b.launches),
                ("body_override_s",
                 "" if b.body_override_s is None
                 else f"{b.body_override_s:.9g}"),
            ))
            for i, (t, e) in enumerate(zip(r.times_s, r.energies_j)):
                out.write(
                    f"{r.benchmark},{r.size},{r.device},{r.device_class},"
                    f"{i},{t:.9g},{e:.9g},{tags}\n"
                )
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "ResultSet":
        """Rebuild a result set from :meth:`to_csv` output.

        Rows are grouped by (benchmark, size, device) in first-seen
        order; samples are ordered by their ``sample`` index.  The
        ``tags`` column restores the group-level fields; files written
        before the column existed (7-column header) still load, with
        those fields defaulting to zeros/False.  Per-region recorders
        are not serialised to CSV and come back as ``None``.
        """
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            return cls()
        header = lines[0].split(",")
        expected = ["benchmark", "size", "device", "device_class",
                    "sample", "time_s", "energy_j"]
        if header[:7] != expected:
            raise ValueError(
                f"unrecognised results CSV header {lines[0]!r}")
        has_tags = len(header) > 7 and header[7] == "tags"
        groups: dict[tuple[str, str, str, str], dict] = {}
        for n, line in enumerate(lines[1:], start=2):
            parts = line.split(",")
            if len(parts) < 7:
                raise ValueError(f"line {n}: expected >= 7 fields, "
                                 f"got {len(parts)}")
            benchmark, size, device, device_class = parts[:4]
            sample = int(parts[4])
            time_s, energy_j = float(parts[5]), float(parts[6])
            tags = {}
            if has_tags and len(parts) > 7:
                for pair in parts[7].split(";"):
                    if "=" in pair:
                        key, _, value = pair.partition("=")
                        tags[key] = value
            group = groups.setdefault(
                (benchmark, size, device, device_class),
                {"rows": [], "tags": tags})
            group["rows"].append((sample, time_s, energy_j))
        results = []
        for (benchmark, size, device, device_class), group in groups.items():
            rows = sorted(group["rows"])
            tags = group["tags"]
            override = tags.get("body_override_s", "")
            breakdown = TimeBreakdown(
                compute_s=float(tags.get("compute_s", 0.0)),
                memory_s=float(tags.get("memory_s", 0.0)),
                serial_s=float(tags.get("serial_s", 0.0)),
                launch_s=float(tags.get("launch_s", 0.0)),
                launches=int(tags.get("launches", 1)),
                body_override_s=float(override) if override else None,
            )
            results.append(RunResult(
                benchmark=benchmark,
                size=size,
                device=device,
                device_class=device_class,
                nominal_s=float(tags.get("nominal_s", 0.0)),
                times_s=np.array([t for _, t, _ in rows], dtype=float),
                energies_j=np.array([e for _, _, e in rows], dtype=float),
                loop_iterations=int(tags.get("loop_iterations", 1)),
                breakdown=breakdown,
                footprint_bytes=int(tags.get("footprint_bytes", 0)),
                validated=tags.get("validated", "False") == "True",
            ))
        return cls(results)

    def summary_rows(self) -> list[dict]:
        """One summary dict per group (for table rendering)."""
        rows = []
        for r in self.results:
            s = r.time_summary
            rows.append({
                "benchmark": r.benchmark,
                "size": r.size,
                "device": r.device,
                "class": r.device_class,
                "mean_ms": round(s.mean * 1e3, 4),
                "median_ms": round(s.median * 1e3, 4),
                "cov": round(s.cov, 4),
                "mean_energy_j": round(float(r.energies_j.mean()), 4),
                "loop_iters": r.loop_iterations,
                "bound": r.breakdown.bound,
            })
        return rows

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)
