"""Result collection, grouping and export."""

from __future__ import annotations

import io
from collections import defaultdict

import numpy as np

from .runner import RunResult


class ResultSet:
    """A collection of :class:`RunResult` with grouping helpers."""

    def __init__(self, results: list[RunResult] | None = None):
        self.results: list[RunResult] = list(results or [])

    def add(self, result: RunResult) -> None:
        """Append one result."""
        self.results.append(result)

    def extend(self, results: list[RunResult]) -> None:
        """Append many results."""
        self.results.extend(results)

    # ------------------------------------------------------------------
    def filter(self, benchmark: str | None = None, size: str | None = None,
               device: str | None = None, device_class: str | None = None
               ) -> "ResultSet":
        """A new set restricted to the given coordinates (None = any)."""
        out = [
            r for r in self.results
            if (benchmark is None or r.benchmark == benchmark)
            and (size is None or r.size == size)
            and (device is None or r.device == device)
            and (device_class is None or r.device_class == device_class)
        ]
        return ResultSet(out)

    def get(self, benchmark: str, size: str, device: str) -> RunResult:
        """The result for one exact cell; raises ``KeyError`` if absent."""
        for r in self.results:
            if (r.benchmark, r.size, r.device) == (benchmark, size, device):
                return r
        raise KeyError(f"no result for ({benchmark}, {size}, {device})")

    def devices(self) -> list[str]:
        """Device names present, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.device, None)
        return list(seen)

    def sizes(self) -> list[str]:
        """Size names present, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.size, None)
        return list(seen)

    # ------------------------------------------------------------------
    def best_device(self, benchmark: str, size: str,
                    device_class: str | None = None) -> RunResult:
        """The fastest device for a group (by mean kernel time)."""
        candidates = self.filter(benchmark=benchmark, size=size,
                                 device_class=device_class).results
        if not candidates:
            raise KeyError(f"no results for ({benchmark}, {size}, {device_class})")
        return min(candidates, key=lambda r: r.mean_ms)

    def class_mean_ms(self, benchmark: str, size: str, device_class: str) -> float:
        """Mean of per-device means within an accelerator class."""
        rs = self.filter(benchmark=benchmark, size=size,
                         device_class=device_class).results
        if not rs:
            raise KeyError(f"no results for ({benchmark}, {size}, {device_class})")
        return float(np.mean([r.mean_ms for r in rs]))

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Long-form CSV: one row per sample."""
        out = io.StringIO()
        out.write("benchmark,size,device,device_class,sample,time_s,energy_j\n")
        for r in self.results:
            for i, (t, e) in enumerate(zip(r.times_s, r.energies_j)):
                out.write(
                    f"{r.benchmark},{r.size},{r.device},{r.device_class},"
                    f"{i},{t:.9g},{e:.9g}\n"
                )
        return out.getvalue()

    def summary_rows(self) -> list[dict]:
        """One summary dict per group (for table rendering)."""
        rows = []
        for r in self.results:
            s = r.time_summary
            rows.append({
                "benchmark": r.benchmark,
                "size": r.size,
                "device": r.device,
                "class": r.device_class,
                "mean_ms": round(s.mean * 1e3, 4),
                "median_ms": round(s.median * 1e3, 4),
                "cov": round(s.cov, 4),
                "mean_energy_j": round(float(r.energies_j.mean()), 4),
                "loop_iters": r.loop_iterations,
                "bound": r.breakdown.bound,
            })
        return rows

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)
