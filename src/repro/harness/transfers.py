"""Host <-> device memory-transfer measurement.

"For each benchmark we also measured memory transfer times between
host and device, however, only the kernel execution times and energies
are presented here" (paper §4.3).  This module presents them: it
executes each benchmark's real input/output transfers on the simulated
queue and reports the per-direction times, making visible the PCIe
penalty discrete GPUs pay that CPU devices do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.catalog import get_device
from ..dwarfs.registry import get_benchmark
from ..ocl import CommandQueue, Context, find_device


@dataclass(frozen=True)
class TransferMeasurement:
    """Transfer times for one (benchmark, size, device) group."""

    benchmark: str
    size: str
    device: str
    device_class: str
    bytes_to_device: int
    bytes_from_device: int
    to_device_s: float
    from_device_s: float

    @property
    def total_s(self) -> float:
        return self.to_device_s + self.from_device_s

    def as_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "size": self.size,
            "device": self.device,
            "to device": f"{self.bytes_to_device / 1024:.0f} KiB / "
                         f"{self.to_device_s * 1e3:.4f} ms",
            "from device": f"{self.bytes_from_device / 1024:.0f} KiB / "
                           f"{self.from_device_s * 1e3:.4f} ms",
        }


def measure_transfers(benchmark: str, size: str, device: str
                      ) -> TransferMeasurement:
    """Execute one benchmark's transfers and read the event timings."""
    spec = get_device(device)
    bench = get_benchmark(benchmark).from_size(size)
    context = Context(find_device(spec.name))
    queue = CommandQueue(context)
    try:
        bench.host_setup(context)
        inputs = bench.transfer_inputs(queue)
        bench.run_iteration(queue)
        outputs = bench.collect_results(queue)
        return TransferMeasurement(
            benchmark=benchmark,
            size=size,
            device=spec.name,
            device_class=spec.device_class.value,
            bytes_to_device=sum(e.info.get("bytes", 0) for e in inputs),
            bytes_from_device=sum(e.info.get("bytes", 0) for e in outputs),
            to_device_s=sum(e.duration_s for e in inputs),
            from_device_s=sum(e.duration_s for e in outputs),
        )
    finally:
        bench.teardown()


def transfer_table(benchmarks: list[str], size: str = "small",
                   devices: tuple[str, ...] = ("i7-6700K", "GTX 1080", "K20m")
                   ) -> list[TransferMeasurement]:
    """Transfer measurements for a set of benchmarks across devices."""
    out = []
    for name in benchmarks:
        cls = get_benchmark(name)
        use = size if size in cls.presets else cls.available_sizes()[0]
        for device in devices:
            out.append(measure_transfers(name, use, device))
    return out
