"""Text rendering of the paper's tables.

Regenerates Table 1 (hardware), Table 2 (workload scale parameters)
and Table 3 (program arguments) from the live catalog and benchmark
registry, so any drift between code and publication is visible.
"""

from __future__ import annotations

import io

from ..devices.catalog import CATALOG
from ..dwarfs.base import SIZES
from ..dwarfs.registry import program_arguments_table, scale_parameters_table


def render_table(rows: list[dict], title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)\n"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    out.write(header + "\n")
    out.write("-+-".join("-" * widths[c] for c in columns) + "\n")
    for r in rows:
        out.write(" | ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns) + "\n")
    return out.getvalue()


def table1_rows() -> list[dict]:
    """Table 1: hardware characteristics of the 15 platforms."""
    return [spec.table1_row() for spec in CATALOG]


def table1_text() -> str:
    """Table 1 rendered as aligned text."""
    return render_table(table1_rows(), "Table 1: Hardware")


def table2_rows() -> list[dict]:
    """Table 2: workload scale parameters Φ."""
    table = scale_parameters_table()
    rows = []
    for name, sizes in table.items():
        row = {"Benchmark": name}
        for size in SIZES:
            row[size] = sizes.get(size, "–")
        rows.append(row)
    return rows


def table2_text() -> str:
    """Table 2 rendered as aligned text."""
    return render_table(table2_rows(), "Table 2: OpenDwarfs workload scale parameters Φ")


def table3_rows() -> list[dict]:
    """Table 3: program arguments."""
    return [
        {"Benchmark": name, "Arguments": template}
        for name, template in program_arguments_table().items()
    ]


def table3_text() -> str:
    """Table 3 rendered as aligned text."""
    return render_table(table3_rows(), "Table 3: Program Arguments")
