"""Benchmark harness: runner, results, tables, figures, CLI."""

from .figures import (
    DEVICES_NO_KNL,
    ENERGY_BENCHMARKS,
    ENERGY_DEVICES,
    FigureData,
    check_cov_tracks_clock,
    check_fig1_cpu_wins,
    check_fig3a_gap_widens,
    check_fig3b_amd_degrades,
    check_fig5_cpu_energy_higher,
    check_hpc_vs_consumer,
    class_means,
    figure1_crc,
    figure2,
    figure3,
    figure4,
    figure5,
)
from .report import (
    render_table,
    table1_rows,
    table1_text,
    table2_rows,
    table2_text,
    table3_rows,
    table3_text,
)
# The sweep-engine import must precede the crossover import: loading
# the ``.sweep`` submodule binds it to the package attribute ``sweep``,
# which the long-standing ``crossover.sweep`` function re-claims on the
# next line (``from repro.harness import sweep`` keeps meaning the
# crossover sweep; use ``from repro.harness.sweep import ...`` for the
# engine).
from .sweep import (
    MODEL_VERSION,
    SweepCache,
    SweepOutcome,
    default_cache_dir,
    run_sweep,
)
from .crossover import CrossoverResult, SweepPoint, crossover_footprint_kib, sweep
from .plots import render_figure_html, save_figure_html
from .results import ResultSet
from .transfers import TransferMeasurement, measure_transfers, transfer_table
from .runner import (
    DEFAULT_SAMPLES,
    MIN_LOOP_SECONDS,
    RunConfig,
    RunResult,
    cell_seed,
    run_benchmark,
    run_matrix,
)

__all__ = [
    "CrossoverResult",
    "MODEL_VERSION",
    "SweepCache",
    "SweepOutcome",
    "SweepPoint",
    "cell_seed",
    "crossover_footprint_kib",
    "default_cache_dir",
    "run_sweep",
    "sweep",
    "DEFAULT_SAMPLES",
    "DEVICES_NO_KNL",
    "ENERGY_BENCHMARKS",
    "ENERGY_DEVICES",
    "FigureData",
    "MIN_LOOP_SECONDS",
    "ResultSet",
    "render_figure_html",
    "save_figure_html",
    "TransferMeasurement",
    "measure_transfers",
    "transfer_table",
    "RunConfig",
    "RunResult",
    "check_cov_tracks_clock",
    "check_fig1_cpu_wins",
    "check_fig3a_gap_widens",
    "check_fig3b_amd_degrades",
    "check_fig5_cpu_energy_higher",
    "check_hpc_vs_consumer",
    "class_means",
    "figure1_crc",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "render_table",
    "run_benchmark",
    "run_matrix",
    "table1_rows",
    "table1_text",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
]
