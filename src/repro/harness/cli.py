"""Command-line interface (the ``opendwarfs`` entry point).

Follows the paper's invocation convention (§4.4.5): each application
runs as ``Benchmark Device -- Arguments`` where Device is the
``-p <platform> -d <device> -t <type>`` triple and Arguments is the
benchmark's Table 3 string, e.g.::

    opendwarfs run kmeans -p 0 -d 1 -t 0 -- -g -f 26 -p 65600
    opendwarfs run fft --device "GTX 1080" --size medium
    opendwarfs run kmeans --size tiny --trace t.json --metrics m.prom
    opendwarfs table 2
    opendwarfs figure 3a
    opendwarfs trace lsb.kmeans.r0 -o kmeans.trace.json
    opendwarfs verify-sizes kmeans
    opendwarfs list-devices
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path

from ..analysis.findings import FAIL_ON_CHOICES
from ..devices.catalog import CATALOG, device_names, get_device
from ..dwarfs.base import SIZES
from ..dwarfs.registry import BENCHMARKS, EXTENSIONS, get_benchmark
from ..ocl.platform import select_device
from ..scibench.stats import summarize
from . import figures as figmod
from .report import render_table, table1_text, table2_text, table3_text
from .results import ResultSet
from .runner import RunConfig, run_benchmark
from .sweep import SweepCache, default_cache_dir, run_sweep

#: Exit statuses shared by every subcommand: 0 = success, 1 = the
#: command ran but found something (lint findings, regressions, an
#: unsatisfiable schedule), 2 = usage or configuration error (bad
#: flags, unknown device, missing baseline).
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


class UsageError(Exception):
    """A usage/configuration error; :func:`main` maps it to exit 2."""


def _resolve_device(name: str):
    """Catalog lookup that reports unknown names as a usage error."""
    try:
        return get_device(name)
    except KeyError as exc:
        raise UsageError(str(exc.args[0]) if exc.args else str(exc)) from None


@contextlib.contextmanager
def _observability(args):
    """Wire ``--trace`` / ``--metrics`` / ``--log-jsonl`` around a command.

    ``--trace`` subscribes a Chrome-trace exporter to the global event
    bus and installs an enabled tracer so harness spans land in the
    same file; ``--log-jsonl`` installs a process-default run log; both
    are torn down (and their files written) on the way out.
    ``--metrics`` snapshots the global registry afterwards.
    """
    from ..telemetry import (
        ChromeTraceExporter,
        GLOBAL_EVENT_BUS,
        RunLog,
        Tracer,
        default_registry,
        set_default_runlog,
        set_tracer,
    )

    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    log_path = getattr(args, "log_jsonl", None)
    for out_path in (trace_path, metrics_path, log_path):
        if out_path:
            Path(out_path).expanduser().parent.mkdir(parents=True,
                                                     exist_ok=True)
    exporter = tracer = runlog = prev_tracer = None
    if trace_path:
        exporter = ChromeTraceExporter()
        GLOBAL_EVENT_BUS.subscribe(exporter.on_event)
        tracer = Tracer(enabled=True)
        prev_tracer = set_tracer(tracer)
    if log_path:
        runlog = RunLog(log_path)
        set_default_runlog(runlog)
    try:
        yield
    finally:
        if runlog is not None:
            set_default_runlog(None)
            runlog.close()
            print(f"wrote {log_path} ({runlog.records_written} records)")
        if exporter is not None:
            GLOBAL_EVENT_BUS.unsubscribe(exporter.on_event)
            set_tracer(prev_tracer)
            exporter.add_tracer(tracer)
            exporter.write(trace_path)
            print(f"wrote {trace_path} ({exporter.slice_count} slices)")
        if metrics_path:
            Path(metrics_path).write_text(default_registry().expose())
            print(f"wrote {metrics_path}")


@contextlib.contextmanager
def _ensure_tracer():
    """Yield an enabled tracer: the current one, or a temporary install.

    Lets phase-collecting commands (``regress record``, ``--profile``)
    compose with ``--trace``: when :func:`_observability` already
    installed an enabled tracer, its spans are reused rather than
    shadowed.
    """
    from ..telemetry import get_tracer, tracing

    current = get_tracer()
    if current.enabled:
        yield current
    else:
        with tracing() as tracer:
            yield tracer


def _phase_dict(spans) -> dict:
    """Per-phase timing summary (the BENCH ``phases`` field) from spans."""
    from ..telemetry import phase_summary

    return {
        stat.phase: {"total_s": stat.total_s, "self_s": stat.self_s,
                     "count": stat.count}
        for stat in phase_summary(spans).stats
    }


def _sweep_options(args, default_cache: bool) -> tuple[int | None, SweepCache | None, bool]:
    """Resolve ``--jobs``/``--cache-dir``/``--no-cache``/``--refresh``/``--resume``.

    Returns ``(jobs, cache, refresh)`` for :func:`run_sweep`.  The
    cache defaults on (at :func:`default_cache_dir`) only for
    full-matrix sweeps (``default_cache=True``); single runs and
    figures cache only when ``--cache-dir`` is given explicitly, so
    their output stays invocation-independent.  ``--resume`` is the
    cache-reuse default made explicit; combining it with ``--no-cache``
    or ``--refresh`` is contradictory and rejected.
    """
    resume = getattr(args, "resume", False)
    no_cache = getattr(args, "no_cache", False)
    refresh = getattr(args, "refresh", False)
    if resume and (no_cache or refresh):
        raise UsageError("--resume contradicts --no-cache/--refresh")
    cache = None
    if not no_cache:
        if args.cache_dir:
            cache = SweepCache(args.cache_dir)
        elif default_cache or resume:
            cache = SweepCache(default_cache_dir())
    return args.jobs, cache, refresh


def _print_sweep_summary(outcome, cache: SweepCache | None) -> None:
    """One-line accounting of a sweep's compute/cache split."""
    where = f" [cache: {cache.root}]" if cache is not None else ""
    print(f"{outcome.cells} cells: {outcome.computed} computed, "
          f"{outcome.cached} cached in {outcome.wall_s:.2f} s "
          f"({outcome.jobs} jobs){where}")


def _matrix_configs(args) -> list[RunConfig]:
    """The measurement-matrix cells selected by ``--benchmark``/``--size``/
    ``--device`` (each ``None`` meaning "every one registered")."""
    execute = not args.no_execute
    devices = ([_resolve_device(args.device).name] if args.device
               else list(device_names()))
    benchmarks = ([args.benchmark] if getattr(args, "benchmark", None)
                  and args.benchmark != "all" else sorted(BENCHMARKS))
    configs = []
    for name in benchmarks:
        cls = get_benchmark(name)
        sizes = [args.size] if args.size else list(cls.available_sizes())
        for size in sizes:
            if size not in cls.available_sizes():
                continue
            for device in devices:
                configs.append(RunConfig(
                    benchmark=name, size=size, device=device,
                    samples=args.samples, execute=execute, validate=execute,
                    seed=args.seed,
                ))
    return configs


def cmd_run_all(args) -> int:
    """``run all``: the paper's full measurement matrix, parallel + cached.

    Covers every registered benchmark x its sizes (or ``--size``) x the
    catalog (or ``--device``).  Like a single ``run``, each cell
    executes functionally and validates unless ``--no-execute`` asks
    for model-only timing — recommended when sweeping the large sizes,
    whose functional numpy passes are the expensive part.
    """
    from ..telemetry import ProfileSession

    jobs, cache, refresh = _sweep_options(args, default_cache=True)
    configs = _matrix_configs(args)
    session = ProfileSession(enabled=getattr(args, "profile", False))
    with _observability(args), session:
        outcome = run_sweep(configs, jobs=jobs, cache=cache, refresh=refresh)
    if session.enabled:
        print(session.report().to_table())
    results = ResultSet(outcome.results)
    rows = []
    for name in sorted({c.benchmark for c in configs}):
        for size in [s for s in SIZES
                     if any(c.size == s and c.benchmark == name
                            for c in configs)]:
            best = results.best_device(name, size)
            rows.append({
                "benchmark": name, "size": size,
                "best device": best.device,
                "class": best.device_class,
                "mean (ms)": round(best.mean_ms, 4),
            })
    print(render_table(rows, "Fastest device per benchmark x size"))
    _print_sweep_summary(outcome, cache)
    return EXIT_OK


def _split_device_args(argv: list[str]) -> tuple[list[str], list[str]]:
    """Split ``Device -- Arguments`` at the ``--`` separator."""
    if "--" in argv:
        split = argv.index("--")
        return argv[:split], argv[split + 1 :]
    return argv, []


def cmd_list_devices(_args) -> int:
    """``list-devices``: print the simulated device catalog."""
    rows = []
    for spec in CATALOG:
        rows.append({
            "Name": spec.name,
            "Class": spec.device_class.value,
            "Vendor": spec.vendor.value,
            "fp32 GFLOP/s": round(spec.compute.fp32_gflops),
            "Mem GB/s": spec.memory.bandwidth_gbs,
            "TDP W": spec.tdp_w,
        })
    print(render_table(rows, "Simulated devices"))
    return EXIT_OK


def cmd_run(args) -> int:
    """``run``: one measurement group (or dispatch to ``run all``)."""
    if args.benchmark == "all":
        return cmd_run_all(args)
    device_argv, bench_argv = _split_device_args(args.rest)
    # resolve the device: either -p/-d/-t triple or --device name
    if args.device:
        device_name = _resolve_device(args.device).name
    else:
        p = d = t = None
        i = 0
        while i < len(device_argv):
            if device_argv[i] == "-p":
                p = int(device_argv[i + 1]); i += 2
            elif device_argv[i] == "-d":
                d = int(device_argv[i + 1]); i += 2
            elif device_argv[i] == "-t":
                t = int(device_argv[i + 1]); i += 2
            else:
                print(f"unknown device argument {device_argv[i]!r}", file=sys.stderr)
                return EXIT_USAGE
        if None in (p, d, t):
            device_name = "i7-6700K"
        else:
            device_name = select_device(p, d, t).name

    from ..telemetry import ProfileSession

    cls = get_benchmark(args.benchmark)
    session = ProfileSession(enabled=getattr(args, "profile", False))
    with _observability(args), session:
        if bench_argv:
            bench = cls.from_args(bench_argv)
            # derive a label for reporting; reuse the closest preset if any
            size = next(
                (s for s in cls.available_sizes()
                 if cls.presets[s] == getattr(bench, "n", None)),
                "custom",
            )
            if size == "custom":
                result = _run_custom(bench, device_name, args)
                _print_result(result)
                return EXIT_OK
        else:
            size = args.size or cls.available_sizes()[0]
        config = RunConfig(
            benchmark=args.benchmark, size=size, device=device_name,
            samples=args.samples, execute=not args.no_execute,
            validate=not args.no_execute, seed=args.seed,
        )
        jobs, cache, refresh = _sweep_options(args, default_cache=False)
        if cache is not None:
            outcome = run_sweep([config], jobs=1, cache=cache,
                                refresh=refresh)
            _print_result(outcome.results[0])
            _print_sweep_summary(outcome, cache)
        else:
            _print_result(run_benchmark(config))
    if session.enabled:
        print(session.report().to_table())
    return EXIT_OK


def _run_custom(bench, device_name: str, args):
    """Measure a benchmark instance built from explicit arguments."""
    import numpy as np

    from ..ocl import CommandQueue, Context, find_device
    from ..perfmodel import iteration_time, noisy_samples
    from .runner import RunResult, _energy_samples

    spec = get_device(device_name)
    rng = np.random.default_rng(4321)
    validated = False
    if not args.no_execute:
        context = Context(find_device(spec.name))
        queue = CommandQueue(context, rng=rng)
        try:
            bench.run_complete(context, queue)
            validated = True
        finally:
            bench.teardown()
    breakdown = iteration_time(spec, bench.profiles())
    loop = max(1, int(2.0 / max(breakdown.total_s, 1e-9)))
    times = noisy_samples(spec, breakdown.total_s, args.samples, rng,
                          loop_iterations=loop)
    energies = _energy_samples(spec, times, breakdown.utilization, rng)
    return RunResult(
        benchmark=bench.name, size="custom", device=spec.name,
        device_class=spec.device_class.value, nominal_s=breakdown.total_s,
        times_s=times, energies_j=energies, loop_iterations=loop,
        breakdown=breakdown, footprint_bytes=bench.footprint_bytes(),
        validated=validated,
    )


def _print_result(result) -> None:
    s = summarize(result.times_s)
    print(f"benchmark : {result.benchmark} ({result.size})")
    print(f"device    : {result.device} [{result.device_class}]")
    print(f"footprint : {result.footprint_bytes / 1024:.1f} KiB")
    print(f"validated : {result.validated}")
    print(f"samples   : {s.n} (looped x{result.loop_iterations} per sample)")
    print(f"kernel    : mean {s.mean * 1e3:.4f} ms  median {s.median * 1e3:.4f} ms"
          f"  cov {s.cov:.3f}")
    print(f"bound     : {result.breakdown.bound}"
          f" (compute {result.breakdown.compute_s * 1e3:.4f} ms,"
          f" memory {result.breakdown.memory_s * 1e3:.4f} ms,"
          f" launch {result.breakdown.launch_s * 1e3:.4f} ms)")
    print(f"energy    : mean {result.energies_j.mean():.4f} J")


def cmd_table(args) -> int:
    """``table``: print one of the paper's tables."""
    text = {1: table1_text, 2: table2_text, 3: table3_text}[args.number]()
    print(text)
    return EXIT_OK


def cmd_figure(args) -> int:
    """``figure``: regenerate one of the paper's figures."""
    fid = args.figure_id.lower()
    samples = args.samples
    jobs, cache, refresh = _sweep_options(args, default_cache=False)
    sweep_kw = dict(samples=samples, jobs=jobs, cache=cache,
                    refresh=refresh)
    with _observability(args):
        if fid in ("1", "fig1"):
            fig = figmod.figure1_crc(**sweep_kw)
        elif fid in ("2a", "2b", "2c", "2d", "2e"):
            bench = {"2a": "kmeans", "2b": "lud", "2c": "csr", "2d": "dwt",
                     "2e": "fft"}[fid]
            fig = figmod.figure2(bench, **sweep_kw)
        elif fid in ("3a", "3b"):
            fig = figmod.figure3({"3a": "srad", "3b": "nw"}[fid],
                                 **sweep_kw)
        elif fid in ("4", "fig4"):
            fig = figmod.figure4(**sweep_kw)
        elif fid in ("5", "fig5"):
            fig = figmod.figure5(**sweep_kw)
        else:
            print(f"unknown figure {args.figure_id!r}", file=sys.stderr)
            return EXIT_USAGE
    print(fig.render())
    if args.csv:
        print(fig.to_csv())
    if args.html:
        from .plots import save_figure_html
        path = save_figure_html(fig, args.html, log_scale=(fid in ("5", "fig5")))
        print(f"wrote {path}")
    return EXIT_OK


def cmd_profile(args) -> int:
    """``profile run|all``: self-profile the harness over a sweep.

    Runs the selected matrix under a
    :class:`~repro.telemetry.profile.ProfileSession` and reports where
    the harness's own wall time went: a phase-attributed table (or
    folded stacks / JSON with ``--format``), cProfile hotspots, and —
    always — a folded-stack file for flamegraph tools plus one merged
    Perfetto trace in which worker spans nest under the parent sweep
    span.  The result cache defaults off here (``--cache-dir`` opts
    in): serving cells from the cache would profile deserialisation,
    not measurement.
    """
    import json as jsonmod

    from ..telemetry import (
        ChromeTraceExporter,
        GLOBAL_EVENT_BUS,
        ProfileSession,
    )

    jobs, cache, refresh = _sweep_options(args, default_cache=False)
    configs = _matrix_configs(args)
    if not configs:
        raise UsageError("no matrix cells selected")
    exporter = ChromeTraceExporter()
    session = ProfileSession(memory=args.memory)
    with exporter.attached(GLOBAL_EVENT_BUS), session:
        outcome = run_sweep(configs, jobs=jobs, cache=cache, refresh=refresh)
    report = session.report(top=args.top)

    folded_path = Path(args.folded).expanduser()
    folded_path.parent.mkdir(parents=True, exist_ok=True)
    folded_path.write_text(report.to_folded() + "\n")
    exporter.add_tracer(session.tracer)
    trace_path = Path(args.trace).expanduser()
    trace_path.parent.mkdir(parents=True, exist_ok=True)
    exporter.write(trace_path)

    if args.format == "table":
        text = report.to_table()
    elif args.format == "folded":
        text = report.to_folded()
    else:
        text = jsonmod.dumps(report.to_json(), indent=2, sort_keys=True)
    if args.output:
        out = Path(args.output).expanduser()
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"wrote {out}")
    else:
        print(text)
    print(f"wrote {folded_path} (folded stacks) and {trace_path} "
          f"(Perfetto trace, {report.span_count} spans)")
    _print_sweep_summary(outcome, cache)
    return EXIT_OK


def cmd_trace(args) -> int:
    """``trace``: inspect a trace file without a viewer.

    Replays a saved LSB recorder file into a Chrome/Perfetto trace, or
    with ``--summary`` prints span count, total/self time and the top-k
    slices by duration — for either an LSB file or an already-exported
    Chrome trace JSON (auto-detected).
    """
    import json as jsonmod

    from ..scibench import lsb
    from ..telemetry import summarize_trace_events, trace_from_recorder

    events = None
    if args.summary:
        # accept Chrome trace JSON directly; fall through to LSB replay
        try:
            payload = jsonmod.loads(
                Path(args.lsb_file).read_text(encoding="utf-8"))
            if isinstance(payload, dict) and "traceEvents" in payload:
                events = payload["traceEvents"]
        except (OSError, ValueError, UnicodeDecodeError):
            events = None
    if events is None:
        try:
            recorder = lsb.load(args.lsb_file)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.lsb_file!r}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        exporter = trace_from_recorder(recorder)
        if not args.summary:
            out = args.output or f"{args.lsb_file}.trace.json"
            exporter.write(out)
            print(f"wrote {out} ({exporter.slice_count} slices from "
                  f"{len(recorder)} measurements)")
            return EXIT_OK
        events = exporter.to_dict()["traceEvents"]
    print(summarize_trace_events(events, top=args.top).render())
    return EXIT_OK


def cmd_characterize(args) -> int:
    """AIWC characterization + diversity analysis (paper §7)."""
    from ..aiwc import analyze, characterize_suite
    metrics = characterize_suite(args.size)
    print(render_table([m.as_row() for m in metrics],
                       f"AIWC metrics ({args.size})"))
    report = analyze(metrics)
    print(render_table(report.distinctiveness_rows(),
                       "Distinctiveness (distance to nearest neighbour)"))
    print("MST:", ", ".join(f"{a}-{b}({d})" for a, b, d in report.mst_edges))
    return EXIT_OK


def cmd_aiwc(args) -> int:
    """``aiwc``: workload characterization, dynamic or purely static.

    ``--static`` derives the AIWC vectors from the kernel IR (the
    static AIWC stage) instead of the hand-authored profiles, covering
    extensions too.  A positional ``.cl`` path characterizes a
    user-supplied kernel with no dynamic run at all: a default launch
    model is synthesized (one launch per kernel, default NDRange and
    buffer sizes) and interpreted abstractly.
    """
    import json as _json

    if args.source is not None:
        from ..analysis.staticaiwc import characterize_model, model_from_source
        from ..ocl.clsource import CLSourceError
        try:
            source = Path(args.source).read_text()
            model = model_from_source(source)
            result = characterize_model(model, name=Path(args.source).stem)
        except (OSError, CLSourceError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if args.json:
            print(_json.dumps({"metrics": result.metrics.as_row(),
                               "kernels": result.per_kernel},
                              indent=2, sort_keys=True))
        else:
            print(render_table([result.metrics.as_row()],
                               f"Static AIWC: {args.source}"))
        return EXIT_OK

    if args.static:
        from ..analysis.staticaiwc import characterize_suite_static
        metrics = characterize_suite_static(args.size)
        title = f"Static AIWC metrics ({args.size})"
    else:
        from ..aiwc import characterize_suite
        metrics = characterize_suite(args.size)
        title = f"AIWC metrics ({args.size})"
    rows = [m.as_row() for m in metrics]
    if args.benchmark:
        rows = [r for r in rows if r["benchmark"] == args.benchmark]
    if args.json:
        print(_json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render_table(rows, title))
    return EXIT_OK


def cmd_autotune(args) -> int:
    """Local work-group size tuning (paper §7)."""
    from ..tuning import autotune_benchmark
    spec = _resolve_device(args.device)
    bench = get_benchmark(args.benchmark).from_size(args.size)
    results = autotune_benchmark(spec, bench)
    for name, result in results.items():
        print(render_table(result.rows(),
                           f"{name} on {spec.name} "
                           f"(best: {result.best_local_size}, "
                           f"{result.speedup_vs_worst:.1f}x vs worst)"))
    return EXIT_OK


def cmd_schedule(args) -> int:
    """Best-device selection under budgets (paper §7)."""
    from ..scheduling import select_device as select
    bench = get_benchmark(args.benchmark).from_size(args.size)
    selection = select(bench, time_budget_s=args.time_budget,
                       energy_budget_j=args.energy_budget,
                       objective=args.objective)
    rows = [{
        "device": p.device, "class": p.device_class,
        "time (ms)": round(p.time_s * 1e3, 4),
        "energy (J)": round(p.energy_j, 4),
        "pick": "<-" if selection.chosen and p.device == selection.chosen.device
                else "",
    } for p in (*selection.feasible, *selection.rejected)]
    print(render_table(rows, f"{args.benchmark} ({args.size}) by "
                             f"{args.objective}"))
    if not selection.satisfiable:
        print("no device satisfies the given budgets")
        return EXIT_FINDINGS
    return EXIT_OK


def cmd_transfers(args) -> int:
    """Host<->device transfer times (measured in the paper, §4.3)."""
    from .transfers import measure_transfers
    m = measure_transfers(args.benchmark, args.size, args.device)
    print(render_table([m.as_row()], "Memory transfer times"))
    return EXIT_OK


def cmd_verify_sizes(args) -> int:
    """``verify-sizes``: cache-counter problem-size verification (§4.4)."""
    from ..sizing.verify import verify_benchmark_sizes
    v = verify_benchmark_sizes(args.benchmark, device=args.device)
    print(render_table(v.summary_rows(),
                       f"Cache-counter verification: {args.benchmark} on {v.device}"))
    return EXIT_OK


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every sweep-capable command (``run``, ``figure``)."""
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep cells "
                             "(default: os.cpu_count(); 1 = serial, "
                             "identical samples either way)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="content-addressed result cache location: a "
                             "directory, or remote://HOST:PORT of a `serve "
                             "--cache-only` instance (default for "
                             "full-matrix sweeps: $REPRO_CACHE_DIR or "
                             "~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute every cell, overwriting cached entries")
    parser.add_argument("--resume", action="store_true",
                        help="continue an interrupted sweep from the cache "
                             "(cells already computed are restored, the "
                             "rest are measured)")


def cmd_lint(args) -> int:
    """``lint``: run the analysis suite and gate on finding severity.

    Executes every benchmark (or one, with ``--benchmark``) at its
    smallest problem size, statically lints the kernel sources and
    host bindings, optionally runs under the shadow-memory sanitizer,
    and exits nonzero when any finding reaches ``--fail-on``.  With
    ``--deep`` the IR pipeline runs as well: exact CFG/dataflow
    versions of the lint checks, the access-model checks (data races,
    uncoalesced global access, bank conflicts) plus the §4.4 symbolic
    working-set cross-check against every size preset.  ``--traces``
    (implies ``--deep``) adds the differential trace gate: IR-derived
    address traces are cross-checked against the hand-authored ones.
    ``--aiwc`` (also implies ``--deep``) adds the AIWC differential
    gate: the static workload-characterization vector is compared
    against the dynamic one per metric with tolerance bands.
    """
    from ..analysis import run_deep_suite, run_suite

    deep = args.deep or args.traces or args.aiwc
    benchmarks = [args.benchmark] if args.benchmark else None
    if deep:
        report = run_deep_suite(
            benchmarks=benchmarks,
            size=args.size,
            sanitize=args.sanitize,
            device_name=args.device,
            ignore=tuple(args.ignore),
            traces=args.traces,
            aiwc=args.aiwc,
        )
    else:
        report = run_suite(
            benchmarks=benchmarks,
            size=args.size,
            sanitize=args.sanitize,
            device_name=args.device,
            ignore=tuple(args.ignore),
        )
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    if args.metrics:
        from ..telemetry import default_registry

        Path(args.metrics).write_text(default_registry().expose())
        print(f"wrote {args.metrics}", file=sys.stderr)
    return EXIT_FINDINGS if report.fails(args.fail_on) else EXIT_OK


def _regress_thresholds(args):
    """Build classification :class:`~repro.regress.Thresholds` from flags."""
    from ..regress import Thresholds
    try:
        return Thresholds(alpha=args.alpha,
                          min_effect_size=args.min_effect,
                          min_rel_shift=args.min_shift)
    except ValueError as exc:
        raise UsageError(str(exc)) from None


def cmd_regress_record(args) -> int:
    """``regress record``: freeze a sweep as a named baseline.

    Measures the selected matrix through :func:`run_sweep` (parallel,
    and cached like ``run all`` so an interrupted record resumes), then
    stores every cell's config, content-address and raw samples as
    ``<baseline-dir>/<name>.json``.  With ``--trajectory-dir`` the
    run's per-cell summaries are also appended to the performance
    trajectory as the next ``BENCH_<n>.json`` point.
    """
    from ..regress import (
        Baseline,
        BaselineError,
        BaselineStore,
        Trajectory,
        TrajectoryError,
        TrajectoryPoint,
        default_baseline_dir,
    )

    jobs, cache, refresh = _sweep_options(args, default_cache=True)
    configs = _matrix_configs(args)
    with _observability(args), _ensure_tracer() as tracer:
        outcome = run_sweep(configs, jobs=jobs, cache=cache, refresh=refresh)
        phases = _phase_dict(tracer.finished)
    try:
        baseline = Baseline.from_sweep(args.name, configs, outcome.results)
        store = BaselineStore(args.baseline_dir or default_baseline_dir())
        path = store.save(baseline)
    except BaselineError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    print(f"recorded baseline {args.name!r}: {len(baseline)} cells -> {path}")
    _print_sweep_summary(outcome, cache)
    if args.trajectory_dir:
        trajectory = Trajectory(args.trajectory_dir)
        index = (args.bench_index if args.bench_index is not None
                 else trajectory.next_index())
        point = TrajectoryPoint.from_results(
            index, outcome.results, label=args.label or args.name,
            phases=phases)
        try:
            point_path = trajectory.append(point)
        except TrajectoryError as exc:
            print(str(exc), file=sys.stderr)
            return EXIT_USAGE
        print(f"appended trajectory point {point_path}")
    return EXIT_OK


def cmd_regress_check(args) -> int:
    """``regress check``: re-measure a baseline's cells and gate.

    Re-runs the *exact* configurations the baseline froze (same sample
    count, same seed — so on an unchanged performance model the samples
    are bit-identical and every cell is ``unchanged``), compares each
    group with Welch's t-test, Cohen's d and a bootstrap ratio CI, and
    exits :data:`EXIT_FINDINGS` when the report trips ``--fail-on``.
    The fresh run deliberately bypasses the sweep cache unless a cache
    is explicitly requested: serving the baseline's own cached samples
    back would make the gate vacuous.
    """
    from ..regress import BaselineError, BaselineStore, compare, default_baseline_dir

    store = BaselineStore(args.baseline_dir or default_baseline_dir())
    try:
        baseline = store.load(args.name)
    except BaselineError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    thresholds = _regress_thresholds(args)
    configs = [cell.run_config() for cell in baseline]
    jobs, cache, refresh = _sweep_options(args, default_cache=False)
    # the comparison stays inside the observability scope so the
    # regress_cells_*_total counters land in a --metrics snapshot
    with _observability(args):
        outcome = run_sweep(configs, jobs=jobs, cache=cache, refresh=refresh)
        report = compare(baseline, outcome.results, thresholds)
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    return EXIT_FINDINGS if report.fails(args.fail_on) else EXIT_OK


def cmd_regress_history(args) -> int:
    """``regress history``: the trajectory and its change points."""
    from ..regress import (
        Trajectory,
        TrajectoryError,
        change_points,
        default_trajectory_dir,
    )

    trajectory = Trajectory(args.trajectory_dir or default_trajectory_dir())
    try:
        points = trajectory.points()
    except TrajectoryError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    thresholds = _regress_thresholds(args)
    changes = change_points(points, thresholds)
    if args.json:
        import json as jsonmod
        print(jsonmod.dumps({
            "points": [
                {"index": p.index, "label": p.label,
                 "model_version": p.model_version,
                 "created_unix": p.created_unix, "cells": len(p.cells)}
                for p in points
            ],
            "change_points": [c.to_dict() for c in changes],
        }, indent=2, sort_keys=True))
    else:
        if not points:
            print(f"no trajectory points in {trajectory.root}")
        rows = [{
            "point": f"BENCH_{p.index}", "label": p.label,
            "cells": len(p.cells), "model": p.model_version,
        } for p in points]
        if rows:
            print(render_table(rows, f"Trajectory: {trajectory.root}"))
        for change in changes:
            print(change.format())
        print(f"{len(changes)} change point(s) across {len(points)} point(s)")
    if args.fail_on_change and changes:
        return EXIT_FINDINGS
    return EXIT_OK


def cmd_serve(args) -> int:
    """``serve``: benchmark-as-a-service over line-delimited JSON/TCP.

    Full mode queues cell/matrix submissions from many concurrent
    clients (deduplicated in flight, cached, LPT-scheduled over the
    sweep pool); ``--cache-only`` serves just the shared result store
    so other workers can point ``--cache-dir remote://host:port`` at
    it.  Protocol and topology: ``docs/service.md``.  ``--log-jsonl``
    doubles as the served-job history feeding ``regress render
    --board``.
    """
    from ..service.server import BenchService, serve_forever

    if args.queue_limit < 1:
        raise UsageError("--queue-limit must be >= 1")
    cache = None
    if not args.no_cache:
        cache = SweepCache(args.cache_dir or default_cache_dir())
    elif args.cache_only:
        raise UsageError("--cache-only needs a cache (drop --no-cache)")
    with _observability(args):
        service = BenchService(
            host=args.host, port=args.port, cache=cache, jobs=args.jobs,
            queue_limit=args.queue_limit, cache_only=args.cache_only,
            execute=args.execute)
        serve_forever(service, port_file=args.port_file)
    return EXIT_OK


def cmd_regress_render(args) -> int:
    """``regress render``: the trajectory as a markdown results document.

    Regenerates the committed ``BENCHMARKS.md`` from the
    ``BENCH_<n>.json`` history (rez's auto-updating results-document
    pattern).  ``--check`` compares against the existing output file
    instead of writing, exiting :data:`EXIT_FINDINGS` when stale — the
    CI guard that the document tracks the trajectory.
    """
    from pathlib import Path

    from ..regress import (
        Trajectory,
        TrajectoryError,
        default_trajectory_dir,
        render_markdown,
    )

    trajectory = Trajectory(args.trajectory_dir or default_trajectory_dir())
    try:
        points = trajectory.points()
    except TrajectoryError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    if getattr(args, "board", False):
        from ..service.board import load_job_history, render_board

        job_records = []
        if args.job_log:
            try:
                job_records = load_job_history(args.job_log)
            except (OSError, ValueError) as exc:
                print(f"cannot read job log {args.job_log!r}: {exc}",
                      file=sys.stderr)
                return EXIT_USAGE
        text = render_board(points, job_records, _regress_thresholds(args))
    elif getattr(args, "job_log", None):
        raise UsageError("--job-log only makes sense with --board")
    else:
        text = render_markdown(points, _regress_thresholds(args))
    if args.check:
        if not args.output:
            raise UsageError("--check requires -o/--output to compare against")
        path = Path(args.output)
        current = path.read_text(encoding="utf-8") if path.exists() else None
        if current != text:
            print(f"{path} is stale; regenerate with "
                  "`python scripts/update_benchmarks_md.py`",
                  file=sys.stderr)
            return EXIT_FINDINGS
        print(f"{path} is up to date ({len(points)} trajectory point(s))")
        return EXIT_OK
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output} ({len(points)} trajectory point(s))")
    else:
        print(text, end="")
    return EXIT_OK


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome/Perfetto trace-event JSON of "
                             "every enqueued command (open in ui.perfetto.dev)")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write harness metrics in Prometheus text format")
    parser.add_argument("--log-jsonl", default=None, metavar="PATH",
                        help="write a structured JSONL run log")


def build_parser() -> argparse.ArgumentParser:
    """The full ``opendwarfs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="opendwarfs",
        description="Extended OpenDwarfs benchmark suite (simulated OpenCL)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-devices", help="show the device catalog"
                   ).set_defaults(func=cmd_list_devices)

    run = sub.add_parser(
        "run", help="run one benchmark, or `all` for the full sweep matrix")
    run.add_argument("benchmark", choices=sorted(BENCHMARKS) + ["all"],
                     help="benchmark name, or `all` for every benchmark x "
                          "size x device (parallel, cached, model-only)")
    run.add_argument("--size", choices=SIZES, default=None)
    run.add_argument("--device", default=None, help="device name from Table 1")
    run.add_argument("--samples", type=int, default=50)
    run.add_argument("--seed", type=int, default=12345,
                     help="base RNG seed for the measurement protocol")
    run.add_argument("--no-execute", action="store_true",
                     help="model-only timing (skip functional execution)")
    run.add_argument("--profile", action="store_true",
                     help="self-profile the harness and print the "
                          "phase/hotspot report afterwards")
    _add_sweep_flags(run)
    _add_observability_flags(run)
    run.set_defaults(func=cmd_run, rest=[])

    table = sub.add_parser("table", help="print a paper table")
    table.add_argument("number", type=int, choices=(1, 2, 3))
    table.set_defaults(func=cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("figure_id",
                        help="1, 2a-2e, 3a, 3b, 4 or 5")
    figure.add_argument("--samples", type=int, default=50)
    figure.add_argument("--csv", action="store_true")
    figure.add_argument("--html", default=None, metavar="PATH",
                        help="also render boxplots to an HTML file")
    _add_sweep_flags(figure)
    _add_observability_flags(figure)
    figure.set_defaults(func=cmd_figure)

    trace = sub.add_parser(
        "trace", help="convert a saved LSB recorder file to a Chrome trace, "
                      "or summarise a trace with --summary")
    trace.add_argument("lsb_file",
                       help="LibSciBench .r file (see repro.scibench.lsb) "
                            "or, with --summary, a Chrome trace JSON")
    trace.add_argument("-o", "--output", default=None, metavar="PATH",
                       help="output path (default: <lsb_file>.trace.json)")
    trace.add_argument("--summary", action="store_true",
                       help="print span count, total/self time and the "
                            "top-k slices instead of writing a trace")
    trace.add_argument("--top", type=int, default=10, metavar="K",
                       help="slices to list in the summary (default: 10)")
    trace.set_defaults(func=cmd_trace)

    profile = sub.add_parser(
        "profile",
        help="self-profile the harness: phase attribution, hotspots, "
             "flamegraph input, merged Perfetto trace")
    profile_sub = profile.add_subparsers(dest="profile_command",
                                         required=True)

    def _add_profile_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--size", choices=SIZES, default=None)
        parser.add_argument("--device", default=None,
                            help="device name from Table 1 (default: all)")
        parser.add_argument("--samples", type=int, default=50)
        parser.add_argument("--seed", type=int, default=12345)
        parser.add_argument("--no-execute", action="store_true",
                            help="model-only timing (skip functional "
                                 "execution)")
        parser.add_argument("--format", choices=("table", "folded", "json"),
                            default="table",
                            help="report rendering (default: table)")
        parser.add_argument("-o", "--output", default=None, metavar="PATH",
                            help="write the report here instead of stdout")
        parser.add_argument("--folded", default="profile.folded",
                            metavar="PATH",
                            help="folded-stack output for flamegraph.pl / "
                                 "speedscope (default: %(default)s)")
        parser.add_argument("--trace", default="profile.trace.json",
                            metavar="PATH",
                            help="merged Perfetto trace output "
                                 "(default: %(default)s)")
        parser.add_argument("--memory", action="store_true",
                            help="also track allocations with tracemalloc "
                                 "(per-cell peak attribution)")
        parser.add_argument("--top", type=int, default=20, metavar="N",
                            help="hotspots to list (default: 20)")
        _add_sweep_flags(parser)

    profile_run = profile_sub.add_parser(
        "run", help="profile a sweep of one benchmark")
    profile_run.add_argument("benchmark", choices=sorted(BENCHMARKS))
    _add_profile_flags(profile_run)
    profile_run.set_defaults(func=cmd_profile)

    profile_all = profile_sub.add_parser(
        "all", help="profile the full measurement matrix")
    _add_profile_flags(profile_all)
    profile_all.set_defaults(func=cmd_profile, benchmark=None)

    characterize = sub.add_parser(
        "characterize", help="AIWC metrics + suite diversity (paper §7)")
    characterize.add_argument("--size", choices=SIZES, default="large")
    characterize.set_defaults(func=cmd_characterize)

    aiwc = sub.add_parser(
        "aiwc", help="AIWC characterization: dynamic profiles or the "
                     "static IR stage")
    aiwc.add_argument("source", nargs="?", default=None, metavar="FILE.cl",
                      help="characterize a user-supplied OpenCL source "
                           "statically (no dynamic run; a default launch "
                           "model is synthesized)")
    aiwc.add_argument("--static", action="store_true",
                      help="derive the vectors from the kernel IR instead "
                           "of the hand-authored profiles (covers the "
                           "extension benchmarks too)")
    aiwc.add_argument("--benchmark",
                      choices=sorted(BENCHMARKS) + sorted(EXTENSIONS),
                      default=None,
                      help="restrict the table to one benchmark")
    aiwc.add_argument("--size", choices=SIZES, default="large")
    aiwc.add_argument("--json", action="store_true",
                      help="emit the metric rows as JSON")
    aiwc.set_defaults(func=cmd_aiwc)

    autotune = sub.add_parser(
        "autotune", help="local work-group size tuning (paper §7)")
    autotune.add_argument("benchmark", choices=sorted(BENCHMARKS))
    autotune.add_argument("--size", choices=SIZES, default="large")
    autotune.add_argument("--device", default="GTX 1080")
    autotune.set_defaults(func=cmd_autotune)

    schedule = sub.add_parser(
        "schedule", help="best device under time/energy budgets (paper §7)")
    schedule.add_argument("benchmark", choices=sorted(BENCHMARKS))
    schedule.add_argument("--size", choices=SIZES, default="large")
    schedule.add_argument("--objective", choices=("time", "energy", "edp"),
                          default="time")
    schedule.add_argument("--time-budget", type=float, default=None,
                          metavar="SECONDS")
    schedule.add_argument("--energy-budget", type=float, default=None,
                          metavar="JOULES")
    schedule.set_defaults(func=cmd_schedule)

    transfers = sub.add_parser(
        "transfers", help="host<->device transfer times (paper §4.3)")
    transfers.add_argument("benchmark", choices=sorted(BENCHMARKS))
    transfers.add_argument("--size", choices=SIZES, default="small")
    transfers.add_argument("--device", default="GTX 1080")
    transfers.set_defaults(func=cmd_transfers)

    lint = sub.add_parser(
        "lint", help="kernel lint + runtime sanitizer (repro.analysis)")
    lint.add_argument("--benchmark",
                      choices=sorted(BENCHMARKS) + sorted(EXTENSIONS),
                      default=None,
                      help="restrict to one benchmark (default: the whole "
                           "suite, paper set plus extensions)")
    lint.add_argument("--size", choices=SIZES, default=None,
                      help="problem size (default: each benchmark's smallest)")
    lint.add_argument("--sanitize", action="store_true",
                      help="also execute kernels under the shadow-memory "
                           "sanitizer (OOB, uninit reads, races, leaks)")
    lint.add_argument("--deep", action="store_true",
                      help="run the kernel IR pipeline too: CFG/dataflow "
                           "exact checks, the access-model checks "
                           "(data-race, uncoalesced-access, bank-conflict) "
                           "plus the symbolic working-set verification "
                           "against footprint_bytes() (paper §4.4)")
    lint.add_argument("--traces", action="store_true",
                      help="differential trace gate (implies --deep): "
                           "cross-check IR-synthesised address traces "
                           "against the hand-authored ones at every size "
                           "preset")
    lint.add_argument("--aiwc", action="store_true",
                      help="AIWC differential gate (implies --deep): "
                           "compare the static workload-characterization "
                           "vector against the dynamic one per metric at "
                           "every size preset")
    lint.add_argument("--json", action="store_true",
                      help="emit the JSON report (schema: docs/analysis.md)")
    lint.add_argument("--ignore", action="append", default=[], metavar="CHECK",
                      help="drop findings of this check id (repeatable)")
    lint.add_argument("--fail-on", choices=FAIL_ON_CHOICES, default="error",
                      help="exit nonzero when a finding reaches this "
                           "severity; 'any' trips on every finding "
                           "(default: error)")
    lint.add_argument("--device", default="i7-6700K",
                      help="catalog device to execute on")
    lint.add_argument("--metrics", default=None, metavar="PATH",
                      help="write analysis metrics in Prometheus text format")
    lint.set_defaults(func=cmd_lint)

    verify = sub.add_parser("verify-sizes",
                            help="cache-counter verification of Table 2 sizes")
    verify.add_argument("benchmark", choices=sorted(BENCHMARKS))
    verify.add_argument("--device", default="i7-6700K")
    verify.set_defaults(func=cmd_verify_sizes)

    regress = sub.add_parser(
        "regress",
        help="performance-regression gate: baselines, checks, history")
    regress_sub = regress.add_subparsers(dest="regress_command",
                                         required=True)

    def _add_threshold_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--alpha", type=float, default=0.01,
                            help="Welch's-test significance level "
                                 "(default: 0.01)")
        parser.add_argument("--min-effect", type=float, default=0.5,
                            metavar="D",
                            help="minimum |Cohen's d| in pooled-sigma units "
                                 "(default: 0.5, the paper's detection "
                                 "target)")
        parser.add_argument("--min-shift", type=float, default=0.03,
                            metavar="FRACTION",
                            help="minimum relative mean shift "
                                 "(default: 0.03 = 3%%)")

    record = regress_sub.add_parser(
        "record", help="measure a sweep and freeze it as a named baseline")
    record.add_argument("--name", default="default",
                        help="baseline name (default: %(default)s)")
    record.add_argument("--benchmark", choices=sorted(BENCHMARKS),
                        default=None,
                        help="restrict to one benchmark (default: all)")
    record.add_argument("--size", choices=SIZES, default=None,
                        help="restrict to one problem size (default: each "
                             "benchmark's presets)")
    record.add_argument("--device", default=None,
                        help="restrict to one Table 1 device (default: the "
                             "full catalog)")
    record.add_argument("--samples", type=int, default=50)
    record.add_argument("--seed", type=int, default=12345,
                        help="base RNG seed for the measurement protocol")
    record.add_argument("--no-execute", action="store_true",
                        help="model-only timing (skip functional execution)")
    record.add_argument("--baseline-dir", default=None, metavar="DIR",
                        help="baseline store location (default: "
                             "$REPRO_BASELINE_DIR or .repro/baselines)")
    record.add_argument("--trajectory-dir", default=None, metavar="DIR",
                        help="also append this run to the BENCH_<n>.json "
                             "trajectory in DIR")
    record.add_argument("--bench-index", type=int, default=None, metavar="N",
                        help="force the trajectory point index (default: "
                             "next free)")
    record.add_argument("--label", default=None,
                        help="trajectory point label, e.g. a git revision "
                             "(default: the baseline name)")
    _add_sweep_flags(record)
    _add_observability_flags(record)
    record.set_defaults(func=cmd_regress_record)

    check = regress_sub.add_parser(
        "check", help="re-measure a baseline's cells and gate on regressions")
    check.add_argument("--name", default="default",
                       help="baseline name (default: %(default)s)")
    check.add_argument("--baseline-dir", default=None, metavar="DIR",
                       help="baseline store location (default: "
                            "$REPRO_BASELINE_DIR or .repro/baselines)")
    check.add_argument("--fail-on", choices=("regressed", "changed", "none"),
                       default="regressed",
                       help="exit 1 when the report has this (default: "
                            "%(default)s; `changed` also trips on "
                            "improvements and coverage drift)")
    check.add_argument("--json", action="store_true",
                       help="emit the JSON report (schema: "
                            "docs/regression.md)")
    _add_threshold_flags(check)
    _add_sweep_flags(check)
    _add_observability_flags(check)
    check.set_defaults(func=cmd_regress_check)

    history = regress_sub.add_parser(
        "history", help="render the BENCH_<n>.json trajectory + change points")
    history.add_argument("--trajectory-dir", default=None, metavar="DIR",
                         help="trajectory location (default: "
                              "$REPRO_TRAJECTORY_DIR or .repro/trajectory)")
    history.add_argument("--json", action="store_true",
                         help="emit points and change points as JSON")
    history.add_argument("--fail-on-change", action="store_true",
                         help="exit 1 when any change point is detected")
    _add_threshold_flags(history)
    history.set_defaults(func=cmd_regress_history)

    render = regress_sub.add_parser(
        "render",
        help="render the trajectory as a markdown results document "
             "(BENCHMARKS.md)")
    render.add_argument("--trajectory-dir", default=None, metavar="DIR",
                        help="trajectory location (default: "
                             "$REPRO_TRAJECTORY_DIR or .repro/trajectory)")
    render.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the document here (default: stdout)")
    render.add_argument("--check", action="store_true",
                        help="compare against -o instead of writing; exit 1 "
                             "when the committed document is stale")
    render.add_argument("--board", action="store_true",
                        help="append the served-job history section "
                             "(the auto-updating results board)")
    render.add_argument("--job-log", default=None, metavar="PATH",
                        help="service JSONL run log feeding the board's "
                             "Served jobs section (from `serve --log-jsonl`)")
    _add_threshold_flags(render)
    render.set_defaults(func=cmd_regress_render)

    serve = sub.add_parser(
        "serve",
        help="benchmark-as-a-service: queue cells/matrices over TCP "
             "(docs/service.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=0, metavar="N",
                       help="TCP port (default: 0 = ephemeral; see "
                            "--port-file)")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here once listening "
                            "(for scripts racing an ephemeral port)")
    serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                       help="pending-job bound before submits are rejected "
                            "with retry_after (default: %(default)s)")
    serve.add_argument("--cache-only", action="store_true",
                       help="serve only the shared result store (no "
                            "compute); workers reach it via --cache-dir "
                            "remote://HOST:PORT")
    serve.add_argument("--execute", action="store_true",
                       help="default served cells to functional execution "
                            "+ validation (clients can override per "
                            "request)")
    _add_sweep_flags(serve)
    _add_observability_flags(serve)
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns the process exit status."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # For `run`, peel off the paper-style tail — the `-p/-d/-t` device
    # triple and everything after `--` — before argparse sees it, since
    # those short flags collide with argparse option handling.
    rest: list[str] = []
    if argv and argv[0] == "run":
        for i, token in enumerate(argv):
            if token == "--" or (token in ("-p", "-d", "-t") and i > 1):
                rest = argv[i:]
                argv = argv[:i]
                break
    args = build_parser().parse_args(argv)
    if hasattr(args, "rest"):
        args.rest = rest
    try:
        return args.func(args)
    except UsageError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        # stdout consumer (head, less) closed the pipe: not an error
        import os
        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


if __name__ == "__main__":
    sys.exit(main())
