"""Memoized per-(benchmark, size) analysis artifacts.

Every sweep cell used to regenerate its access trace and re-run the
abstract interpreter from scratch, even though those artifacts depend
only on the (benchmark, size, trace-length) shape — not on the device
or the measurement protocol.  This module computes them once per
shape and shares them at two levels:

* an **in-process LRU memo** (a handful of entries; a full matrix
  sweeps every device of one (benchmark, size) back to back), which
  also serves pool workers, each of which touches few shapes;
* the **content-addressed persistent layer** of the
  :class:`~repro.harness.sweep.SweepCache`
  (``<root>/analysis/<key[:2]>/<key>.npz``), written only by the
  parent sweep process, so repeated sweeps pay the ``absint`` phase
  zero times.

The artifact key is a SHA-256 over (artifact version, benchmark,
size, trace length) — the same invalidation-by-addressing discipline
as the result cache.

:func:`simulate_cell_counters` replays the memoized traces through
the PAPI counter simulator (scaled-hierarchy technique shared with
:mod:`repro.sizing.verify`), producing the per-cell counter dict the
runner attaches to each :class:`~repro.harness.runner.RunResult`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from ..devices.specs import DeviceSpec
from ..dwarfs.registry import get_benchmark
from ..telemetry.tracer import get_tracer

#: Stamp mixed into every artifact key; bump when the artifact layout
#: or the synthetic branch-trace model changes.  v2 adds the trace
#: provenance (``hand`` vs ``ir``) to the key material and the npz
#: layout, so artifacts from different trace sources never collide.
ARTIFACT_VERSION = "2"

#: Trace length replayed per cell (matches repro.sizing.verify).
DEFAULT_TRACE_LEN = 120_000

#: In-process memo capacity (insertion-ordered LRU).
_MEMO_MAX = 16

#: Synthetic branch-trace model: one loop branch, taken 63 of every
#: 64 iterations — the classic inner-loop pattern the bimodal
#: predictor is built for.
_BRANCH_PC = 0x400000
_BRANCH_PERIOD = 64


@dataclass(frozen=True)
class CellArtifacts:
    """Analysis artifacts shared by every device cell of one shape."""

    benchmark: str
    size: str
    trace_len: int
    #: Where the access trace came from: ``hand`` (the benchmark's
    #: declarative trace spec) or ``ir`` (synthesised from the static
    #: launch model by :mod:`repro.analysis.accessmodel`).
    trace_source: str
    #: Runtime footprint formula (``Benchmark.footprint_bytes``).
    footprint_bytes: int
    #: Abstract-interpretation working set; ``None`` when the
    #: benchmark has no static launch model.
    static_bytes: int | None
    #: Per-kernel, per-parameter stride classes from the IR pipeline.
    strides: dict = field(repr=False)
    #: Representative memory-access trace (int64 byte addresses).
    trace: np.ndarray = field(repr=False)
    #: Synthetic branch trace (parallel pc/outcome arrays).
    branch_pcs: np.ndarray = field(repr=False)
    branch_outcomes: np.ndarray = field(repr=False)


def _current_trace_source() -> str:
    """The ``REPRO_TRACE_SOURCE``-selected provenance (lazy import)."""
    from ..analysis.accessmodel import trace_source

    return trace_source()


def artifact_key(benchmark: str, size: str,
                 trace_len: int = DEFAULT_TRACE_LEN,
                 trace_source: str | None = None) -> str:
    """Content hash (SHA-256 hex) addressing one artifact shape.

    ``trace_source`` defaults to the ``REPRO_TRACE_SOURCE``-selected
    provenance; it is part of the key material, so hand-authored and
    IR-synthesised artifacts address distinct cache entries.
    """
    if trace_source is None:
        trace_source = _current_trace_source()
    material = json.dumps(
        {"artifact_version": ARTIFACT_VERSION, "benchmark": benchmark,
         "size": size, "trace_len": trace_len,
         "trace_source": trace_source},
        sort_keys=True)
    return hashlib.sha256(material.encode()).hexdigest()


def _compute(benchmark: str, size: str, trace_len: int,
             trace_source: str) -> CellArtifacts:
    """Generate the artifacts for one shape (the ``absint`` cost)."""
    from ..analysis.absint import static_footprint
    from ..analysis.accessmodel import resolve_access_trace

    cls = get_benchmark(benchmark)
    bench = cls.from_size(size)
    with get_tracer().span("cell_artifacts", phase="absint",
                           benchmark=benchmark, size=size):
        trace = np.asarray(
            resolve_access_trace(bench, max_len=trace_len,
                                 source=trace_source),
            dtype=np.int64)
        model = bench.static_launches()
        static_bytes: int | None = None
        strides: dict = {}
        if model is not None:
            footprint = static_footprint(model)
            static_bytes = int(footprint.total_bytes)
            strides = footprint.strides
        n = int(trace.size)
        branch_pcs = np.full(n, _BRANCH_PC, dtype=np.int64)
        branch_outcomes = (
            (np.arange(n, dtype=np.int64) % _BRANCH_PERIOD)
            != _BRANCH_PERIOD - 1)
        return CellArtifacts(
            benchmark=benchmark, size=size, trace_len=trace_len,
            trace_source=trace_source,
            footprint_bytes=int(bench.footprint_bytes()),
            static_bytes=static_bytes, strides=strides, trace=trace,
            branch_pcs=branch_pcs, branch_outcomes=branch_outcomes,
        )


_memo: dict[str, CellArtifacts] = {}


def clear_memo() -> None:
    """Drop the in-process artifact memo (tests)."""
    _memo.clear()


def get_cell_artifacts(benchmark: str, size: str,
                       trace_len: int = DEFAULT_TRACE_LEN,
                       cache=None,
                       trace_source: str | None = None) -> CellArtifacts:
    """Fetch (or compute) the artifacts for one shape.

    Lookup order: in-process memo, then the persistent ``cache``
    (any object with ``get_artifact``/``put_artifact``, i.e. a
    :class:`~repro.harness.sweep.SweepCache`), then a fresh
    computation — which is written back to both layers.
    ``trace_source`` defaults to the ``REPRO_TRACE_SOURCE`` selection.
    """
    if trace_source is None:
        trace_source = _current_trace_source()
    key = artifact_key(benchmark, size, trace_len, trace_source)
    artifacts = _memo.get(key)
    if artifacts is not None:
        _memo.pop(key)
        _memo[key] = artifacts  # refresh LRU position
        return artifacts
    if cache is not None:
        artifacts = cache.get_artifact(key)
    if artifacts is None:
        artifacts = _compute(benchmark, size, trace_len, trace_source)
        if cache is not None:
            cache.put_artifact(key, artifacts)
    _memo[key] = artifacts
    while len(_memo) > _MEMO_MAX:
        _memo.pop(next(iter(_memo)))
    return artifacts


def simulate_cell_counters(spec: DeviceSpec,
                           artifacts: CellArtifacts) -> dict[str, int]:
    """Replay one shape's traces through the counter simulator.

    Uses the scaled-hierarchy technique of
    :func:`repro.sizing.verify.verify_benchmark_sizes` so subsampled
    traces keep the capacity relationship honest.  Deterministic (no
    RNG), and every value is a Python ``int``.
    """
    from ..counters.papi import PapiEventSet
    from ..sizing.verify import scaled_spec, touched_bytes

    factor = min(1.0, touched_bytes(artifacts.trace)
                 / max(artifacts.footprint_bytes, 1))
    events = PapiEventSet(scaled_spec(spec, factor))
    events.start()
    if artifacts.trace.size:
        events.record_memory_trace(artifacts.trace)
    if artifacts.branch_pcs.size:
        events.record_branch_trace(artifacts.branch_pcs,
                                   artifacts.branch_outcomes)
    report = events.stop()
    return {name: int(value) for name, value in report.counts.items()}
