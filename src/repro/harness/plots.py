"""Figure rendering: self-contained HTML/SVG boxplot panels.

LibSciBench's value-add in the paper includes "statistical analysis and
visualization" (§6, via R).  This module renders a
:class:`~repro.harness.figures.FigureData` as a static HTML file with
inline SVG — no plotting library required — following the paper's
visual grammar: per problem size, one horizontal box per device,
coloured by accelerator class (CPU / Consumer GPU / HPC GPU / MIC).

Design notes (dataviz method):

* form: distribution comparison across long-named categories →
  horizontal boxplots;
* color job: *identity* of the accelerator class → categorical hues in
  fixed slot order (validated: light worst adjacent CVD ΔE 24.2; two
  light slots sit below 3:1 contrast, so the **table view ships with
  every figure** as relief, and each row is direct-labeled with the
  device name so identity never rides on color alone);
* one axis (time or energy; optionally log10 like the paper's Fig. 5b);
* marks: boxes ≤ 24 px thick, hairline recessive grid, text in text
  tokens (never the series hue);
* hover: every box carries a native SVG tooltip with the five-number
  summary;
* dark mode: selected dark steps of the same hues via
  ``prefers-color-scheme``, validated against the dark surface.
"""

from __future__ import annotations

import html
import math
from pathlib import Path

from .figures import FigureData

#: Accelerator class -> categorical slot, fixed order (never cycled).
CLASS_SLOTS = ("CPU", "Consumer GPU", "HPC GPU", "MIC")

#: Validated categorical steps (light / dark) for the four classes.
LIGHT_COLORS = {"CPU": "#2a78d6", "Consumer GPU": "#1baf7a",
                "HPC GPU": "#eda100", "MIC": "#008300"}
DARK_COLORS = {"CPU": "#3987e5", "Consumer GPU": "#199e70",
               "HPC GPU": "#c98500", "MIC": "#008300"}

_CSS = """
.viz-root {
  --surface-1: #fcfcfb; --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e7e6e2;
  --series-cpu: #2a78d6; --series-consumer: #1baf7a;
  --series-hpc: #eda100; --series-mic: #008300;
  background: var(--surface-1); color: var(--text-primary);
  font: 13px/1.45 system-ui, sans-serif; padding: 16px; max-width: 880px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #383835;
    --series-cpu: #3987e5; --series-consumer: #199e70;
    --series-hpc: #c98500; --series-mic: #008300;
  }
}
.viz-root h1 { font-size: 17px; margin: 0 0 2px; }
.viz-root .subtitle { color: var(--text-secondary); margin: 0 0 12px; }
.viz-root h2 { font-size: 13px; font-weight: 600; margin: 18px 0 4px; }
.viz-root .legend { display: flex; gap: 16px; margin: 8px 0 4px;
  color: var(--text-secondary); }
.viz-root .legend .key { display: inline-block; width: 12px; height: 12px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
.viz-root svg text { fill: var(--text-primary); font: 11px system-ui, sans-serif; }
.viz-root svg .tick-label { fill: var(--text-secondary); font-size: 10px; }
.viz-root svg .grid { stroke: var(--grid); stroke-width: 1; }
.viz-root svg .whisker { stroke: var(--text-secondary); stroke-width: 1; }
.viz-root svg .median { stroke: var(--surface-1); stroke-width: 2; }
.viz-root table { border-collapse: collapse; margin-top: 16px; width: 100%; }
.viz-root th, .viz-root td { text-align: right; padding: 3px 8px;
  border-bottom: 1px solid var(--grid); font-size: 12px; }
.viz-root th:first-child, .viz-root td:first-child { text-align: left; }
"""

_CLASS_VAR = {"CPU": "var(--series-cpu)", "Consumer GPU": "var(--series-consumer)",
              "HPC GPU": "var(--series-hpc)", "MIC": "var(--series-mic)"}

#: Geometry.
ROW_H = 26          # vertical rhythm per device row
BOX_H = 14          # box thickness (<= 24px mark cap)
LEFT = 150          # label gutter
WIDTH = 620         # plot width
PAD_TOP = 8


def _ticks(lo: float, hi: float, log_scale: bool) -> list[float]:
    """Clean axis ticks covering [lo, hi]."""
    if log_scale:
        lo_e = math.floor(math.log10(lo)) if lo > 0 else -3
        hi_e = math.ceil(math.log10(hi)) if hi > 0 else 0
        return [10.0 ** e for e in range(lo_e, hi_e + 1)]
    span = hi - lo if hi > lo else max(hi, 1e-12)
    step = 10 ** math.floor(math.log10(span))
    for divisor in (1, 2, 5, 10):
        if span / (step / divisor) >= 4:
            step /= divisor
            break
    first = math.floor(lo / step) * step
    ticks, t = [], first
    while t <= hi + step / 2:
        ticks.append(round(t, 12))
        t += step
    return ticks


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    if abs(v) >= 1:
        return f"{v:g}"
    return f"{v:.3g}"


def _panel_svg(panel: dict, value_label: str, log_scale: bool) -> str:
    devices = list(panel)
    lo = min(s["min"] for s in panel.values())
    hi = max(s["max"] for s in panel.values())
    if log_scale:
        lo = max(lo, 1e-9)

    def x(v: float) -> float:
        if log_scale:
            v = max(v, lo)
            a, b = math.log10(lo), math.log10(max(hi, lo * 10))
            return LEFT + (math.log10(v) - a) / (b - a) * WIDTH
        if hi <= lo:
            return LEFT
        return LEFT + (v - lo) / (hi - lo) * WIDTH

    height = PAD_TOP + ROW_H * len(devices) + 28
    parts = [
        f'<svg role="img" viewBox="0 0 {LEFT + WIDTH + 40} {height}" '
        f'width="100%" aria-label="boxplot">'
    ]
    ticks = _ticks(lo, hi, log_scale)
    axis_y = PAD_TOP + ROW_H * len(devices)
    for t in ticks:
        if not (lo <= t <= hi * 1.001):
            continue
        tx = x(t)
        parts.append(f'<line class="grid" x1="{tx:.1f}" y1="{PAD_TOP}" '
                     f'x2="{tx:.1f}" y2="{axis_y}"/>')
        parts.append(f'<text class="tick-label" x="{tx:.1f}" y="{axis_y + 14}" '
                     f'text-anchor="middle">{_fmt(t)}</text>')
    parts.append(f'<text class="tick-label" x="{LEFT + WIDTH}" '
                 f'y="{axis_y + 26}" text-anchor="end">{html.escape(value_label)}'
                 f'{" (log)" if log_scale else ""}</text>')

    for i, device in enumerate(devices):
        s = panel[device]
        cy = PAD_TOP + ROW_H * i + ROW_H / 2
        color = _CLASS_VAR.get(s["class"], "var(--series-cpu)")
        tooltip = (f"{device} [{s['class']}]: median {_fmt(s['median'])}, "
                   f"IQR {_fmt(s['q1'])}-{_fmt(s['q3'])}, "
                   f"range {_fmt(s['min'])}-{_fmt(s['max'])}")
        parts.append(f'<text x="{LEFT - 8}" y="{cy + 4:.1f}" '
                     f'text-anchor="end">{html.escape(device)}</text>')
        parts.append(f'<g>{_box_marks(x, s, cy, color)}'
                     f'<title>{html.escape(tooltip)}</title></g>')
    parts.append("</svg>")
    return "".join(parts)


def _box_marks(x, s: dict, cy: float, color: str) -> str:
    x_min, x_q1 = x(s["min"]), x(s["q1"])
    x_med, x_q3, x_max = x(s["median"]), x(s["q3"]), x(s["max"])
    half = BOX_H / 2
    box_w = max(x_q3 - x_q1, 1.5)
    return (
        f'<line class="whisker" x1="{x_min:.1f}" y1="{cy:.1f}" '
        f'x2="{x_q1:.1f}" y2="{cy:.1f}"/>'
        f'<line class="whisker" x1="{x_q3:.1f}" y1="{cy:.1f}" '
        f'x2="{x_max:.1f}" y2="{cy:.1f}"/>'
        f'<line class="whisker" x1="{x_min:.1f}" y1="{cy - 4:.1f}" '
        f'x2="{x_min:.1f}" y2="{cy + 4:.1f}"/>'
        f'<line class="whisker" x1="{x_max:.1f}" y1="{cy - 4:.1f}" '
        f'x2="{x_max:.1f}" y2="{cy + 4:.1f}"/>'
        f'<rect x="{x_q1:.1f}" y="{cy - half:.1f}" width="{box_w:.1f}" '
        f'height="{BOX_H}" rx="3" fill="{color}"/>'
        f'<line class="median" x1="{x_med:.1f}" y1="{cy - half + 1:.1f}" '
        f'x2="{x_med:.1f}" y2="{cy + half - 1:.1f}"/>'
    )


def _legend(classes: list[str]) -> str:
    keys = []
    for name in CLASS_SLOTS:
        if name in classes:
            keys.append(f'<span><span class="key" style="background:'
                        f'{_CLASS_VAR[name]}"></span>{html.escape(name)}</span>')
    return f'<div class="legend">{"".join(keys)}</div>'


def _table(fig: FigureData) -> str:
    rows = ['<table><tr><th>panel / device</th><th>class</th><th>median</th>'
            '<th>q1</th><th>q3</th><th>min</th><th>max</th></tr>']
    for panel_name, panel in fig.panels.items():
        for device, s in panel.items():
            rows.append(
                f"<tr><td>{html.escape(panel_name)} / {html.escape(device)}</td>"
                f"<td>{html.escape(s['class'])}</td>"
                + "".join(f"<td>{_fmt(s[k])}</td>"
                          for k in ("median", "q1", "q3", "min", "max"))
                + "</tr>")
    rows.append("</table>")
    return "".join(rows)


def render_figure_html(fig: FigureData, log_scale: bool = False) -> str:
    """Render a figure as a standalone HTML document."""
    classes = sorted({s["class"] for p in fig.panels.values()
                      for s in p.values()})
    panels = []
    for name, panel in fig.panels.items():
        panels.append(f"<h2>{html.escape(name)}</h2>"
                      + _panel_svg(panel, fig.value_label, log_scale))
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(fig.figure_id)}</title>"
        f"<style>{_CSS}</style></head><body><div class='viz-root'>"
        f"<h1>{html.escape(fig.figure_id)}</h1>"
        f"<p class='subtitle'>{html.escape(fig.title)} — "
        f"{html.escape(fig.value_label)}</p>"
        + _legend(classes)
        + "".join(panels)
        + _table(fig)
        + "</div></body></html>"
    )


def save_figure_html(fig: FigureData, path, log_scale: bool = False) -> Path:
    """Write the rendered figure; returns the path."""
    path = Path(path)
    path.write_text(render_figure_html(fig, log_scale=log_scale))
    return path
