"""Crossover analysis: where one device overtakes another.

The paper's central argument is that fixed-problem-size suites miss
"the problem sizes where these limitations occur" (§3) — a CPU beats a
GPU at tiny sizes (launch overhead, occupancy) and loses at large ones
(bandwidth, parallelism), so the *crossover size* is the actionable
quantity for scheduling.  This module sweeps a benchmark's scale
parameter through the sizing generators and locates the footprint at
which a challenger device overtakes a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.catalog import get_device
from ..devices.specs import DeviceSpec
from ..dwarfs.registry import get_benchmark
from ..perfmodel.roofline import iteration_time
from ..sizing.footprint import SCALE_GENERATORS

#: Sweep stops once footprints exceed this many bytes.
MAX_FOOTPRINT = 512 << 20

#: Safety cap on swept scales.
MAX_POINTS = 600


@dataclass(frozen=True)
class SweepPoint:
    """Modeled times of both devices at one scale."""

    phi: object
    footprint_bytes: int
    baseline_s: float
    challenger_s: float

    @property
    def ratio(self) -> float:
        """baseline / challenger: > 1 means the challenger wins."""
        return self.baseline_s / self.challenger_s


@dataclass(frozen=True)
class CrossoverResult:
    """Outcome of a crossover sweep between two devices."""

    benchmark: str
    baseline: str
    challenger: str
    points: tuple[SweepPoint, ...]
    #: First swept point at which the challenger is faster and stays
    #: faster for the rest of the sweep; None if it never happens (or
    #: if the challenger already wins at the smallest size).
    crossover: SweepPoint | None

    @property
    def challenger_ever_wins(self) -> bool:
        """Whether the challenger beats the baseline at any swept size."""
        return any(p.ratio > 1.0 for p in self.points)

    @property
    def challenger_always_wins(self) -> bool:
        """Whether the challenger beats the baseline at every swept size."""
        return all(p.ratio > 1.0 for p in self.points)

    def rows(self) -> list[dict]:
        """The sweep as printable table rows, crossover point marked."""
        out = []
        for p in self.points:
            out.append({
                "phi": str(p.phi),
                "footprint (KiB)": round(p.footprint_bytes / 1024, 1),
                f"{self.baseline} (ms)": round(p.baseline_s * 1e3, 4),
                f"{self.challenger} (ms)": round(p.challenger_s * 1e3, 4),
                "ratio": round(p.ratio, 3),
                "x": "<-" if self.crossover is not None
                     and p.phi == self.crossover.phi else "",
            })
        return out


def sweep(benchmark: str,
          baseline: str | DeviceSpec,
          challenger: str | DeviceSpec,
          max_footprint: int = MAX_FOOTPRINT,
          stride: int = 2) -> CrossoverResult:
    """Sweep a benchmark's scales and find the stable crossover point.

    ``stride`` subsamples the scale generator (every ``stride``-th
    candidate) to keep sweeps fast; generators are fine-grained.
    """
    base = get_device(baseline) if isinstance(baseline, str) else baseline
    chall = (get_device(challenger) if isinstance(challenger, str)
             else challenger)
    try:
        generator = SCALE_GENERATORS[benchmark]
    except KeyError:
        raise ValueError(
            f"{benchmark!r} has no scale generator; crossover sweeps need "
            "a scalable benchmark") from None
    cls = get_benchmark(benchmark)

    points = []
    for i, phi in enumerate(generator()):
        if i % stride:
            continue
        if len(points) >= MAX_POINTS:
            break
        bench = cls.from_scale(phi)
        footprint = bench.footprint_bytes()
        profiles = bench.profiles()
        points.append(SweepPoint(
            phi=phi,
            footprint_bytes=footprint,
            baseline_s=iteration_time(base, profiles).total_s,
            challenger_s=iteration_time(chall, profiles).total_s,
        ))
        if footprint > max_footprint:
            break

    crossover = None
    # find the first point from which the challenger never falls behind
    for idx, p in enumerate(points):
        if p.ratio > 1.0 and all(q.ratio > 1.0 for q in points[idx:]):
            crossover = p if idx > 0 else None  # idx 0: never behind
            break
    return CrossoverResult(
        benchmark=benchmark,
        baseline=base.name,
        challenger=chall.name,
        points=tuple(points),
        crossover=crossover,
    )


def crossover_footprint_kib(benchmark: str, baseline: str, challenger: str,
                            **kwargs) -> float | None:
    """Convenience: the crossover footprint in KiB (None if no stable
    crossover inside the sweep)."""
    result = sweep(benchmark, baseline, challenger, **kwargs)
    if result.crossover is None:
        return None
    return result.crossover.footprint_bytes / 1024.0
