"""Benchmark runner: the paper's measurement protocol.

For each (benchmark, size, device) group the runner applies §4.3:

* the benchmark executes in a loop for **at least 2 seconds** per
  sample so OS noise does not dominate short kernels;
* **50 samples** are collected (``repro.scibench.required_sample_size``
  reproduces that number from the power calculation);
* the mean kernel time per iteration is recorded per sample, along
  with kernel energy via the RAPL (Intel) or NVML (NVIDIA) sensor
  models.

Functional execution (running the kernels' numpy bodies and validating
against the serial references) is decoupled from timing sampling: one
functional pass establishes correctness, then timing samples are drawn
from the analytic model + noise model — re-running a numpy kernel 10^5
times would only measure the simulator, not the modeled device.
"""

from __future__ import annotations

import hashlib
import math
import time
import tracemalloc
from dataclasses import dataclass, field

import numpy as np

from ..counters.nvml import NvmlSensor
from ..counters.rapl import RaplSensor
from ..devices.catalog import get_device
from ..devices.specs import DeviceSpec, Vendor
from ..dwarfs.base import Benchmark
from ..dwarfs.registry import get_benchmark
from ..ocl import CommandQueue, Context, Device, find_device
from ..perfmodel import iteration_time, noisy_samples
from ..perfmodel.roofline import TimeBreakdown
from ..perfmodel.energy import mean_power_w
from ..scibench.recorder import REGION_KERNEL, REGION_SETUP, REGION_TRANSFER, Recorder
from ..scibench.stats import SampleSummary, summarize
from ..telemetry.metrics import default_registry
from ..telemetry.runlog import RunLog, get_default_runlog
from ..telemetry.tracer import get_tracer

#: Samples per measurement group (paper §4.3).
DEFAULT_SAMPLES = 50

#: Minimum looped duration per sample, seconds (paper §2).
MIN_LOOP_SECONDS = 2.0


def cell_seed(seed: int, benchmark: str, size: str, device: str) -> int:
    """Deterministic RNG seed for one (benchmark, size, device) cell.

    Derived with SHA-256 rather than Python's built-in ``hash`` so the
    value is identical in every process regardless of
    ``PYTHONHASHSEED`` — the property that lets
    :func:`repro.harness.sweep.run_sweep` fan cells out over a process
    pool and still produce samples bit-identical to a serial run.

    Parameters
    ----------
    seed : int
        The sweep-level base seed (``RunConfig.seed``).
    benchmark, size, device : str
        The cell coordinates; ``device`` is the canonical catalog name.

    Returns
    -------
    int
        A 64-bit seed for :func:`numpy.random.default_rng`.
    """
    material = f"{seed}|{benchmark}|{size}|{device}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "little")


@dataclass
class RunConfig:
    """One measurement group: benchmark x size x device."""

    benchmark: str
    size: str
    device: str
    samples: int = DEFAULT_SAMPLES
    min_loop_seconds: float = MIN_LOOP_SECONDS
    #: Execute the kernels functionally and validate results.  Model-
    #: only runs skip this (used for full-matrix sweeps after each
    #: benchmark has been validated once).
    execute: bool = True
    validate: bool = True
    seed: int = 12345


@dataclass
class RunResult:
    """Measurements for one group."""

    benchmark: str
    size: str
    device: str
    device_class: str
    nominal_s: float
    times_s: np.ndarray
    energies_j: np.ndarray
    loop_iterations: int
    breakdown: TimeBreakdown
    footprint_bytes: int
    validated: bool
    #: Simulated PAPI counters for this cell (paper §4.3), from
    #: :func:`repro.harness.artifacts.simulate_cell_counters`; ``None``
    #: for results built outside :func:`run_benchmark` or loaded from
    #: pre-counter payloads.  Always plain Python ints.
    counters: dict[str, int] | None = None
    #: Per-region measurement log; absent for results built outside
    #: :func:`run_benchmark` (e.g. the CLI's custom-argument path).
    recorder: Recorder | None = field(repr=False, default=None)

    @property
    def time_summary(self) -> SampleSummary:
        """Summary statistics of the timing samples."""
        return summarize(self.times_s)

    @property
    def energy_summary(self) -> SampleSummary:
        """Summary statistics of the energy samples."""
        return summarize(self.energies_j)

    @property
    def mean_ms(self) -> float:
        """Mean kernel time per iteration, milliseconds."""
        return float(self.times_s.mean() * 1e3)

    @property
    def mean_energy_j(self) -> float:
        """Mean kernel energy per iteration, joules."""
        return float(self.energies_j.mean())


def _energy_samples(
    spec: DeviceSpec,
    times_s: np.ndarray,
    utilization: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-sample kernel energy through the appropriate sensor model."""
    if spec.vendor == Vendor.NVIDIA:
        sensor = NvmlSensor(spec, rng=rng)
        return np.array([sensor.measure(t, utilization) for t in times_s])
    if spec.vendor == Vendor.INTEL:
        sensor = RaplSensor(spec, rng=rng)
        return np.array([sensor.measure(t, utilization) for t in times_s])
    # AMD boards had no supported PAPI energy module in the paper;
    # model the same power law directly.
    return mean_power_w(spec, utilization) * times_s


def run_benchmark(config: RunConfig, runlog: RunLog | None = None,
                  artifact_cache=None) -> RunResult:
    """Measure one (benchmark, size, device) group.

    Parameters
    ----------
    config : RunConfig
        The cell to measure.
    runlog : RunLog, optional
        Explicit JSONL run log (default: the process-global one).
    artifact_cache : optional
        Persistent store for the per-(benchmark, size) analysis
        artifacts (a :class:`~repro.harness.sweep.SweepCache`); the
        in-process memo is always consulted first.
    """
    from .artifacts import get_cell_artifacts, simulate_cell_counters

    tracer = get_tracer()
    registry = default_registry()
    runlog = runlog if runlog is not None else get_default_runlog()
    spec = get_device(config.device)
    cls = get_benchmark(config.benchmark)
    bench = cls.from_size(config.size)
    rng = np.random.default_rng(
        cell_seed(config.seed, config.benchmark, config.size, spec.name)
    )
    recorder = Recorder(f"{config.benchmark}/{config.size}/{spec.name}")
    if runlog is not None:
        runlog.write("run_start", benchmark=config.benchmark, size=config.size,
                     device=spec.name, samples=config.samples,
                     execute=config.execute)

    wall_start = time.perf_counter()
    with tracer.span("run_benchmark", benchmark=config.benchmark,
                     size=config.size, device=spec.name,
                     phase="measure") as cell_span:
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        validated = False
        if config.execute:
            device = find_device(spec.name)
            context = Context(device)
            queue = CommandQueue(context, rng=rng)
            try:
                with tracer.span("host_setup"):
                    bench.host_setup(context)
                with tracer.span("transfer_inputs"):
                    for event in bench.transfer_inputs(queue):
                        recorder.record_event(REGION_TRANSFER, event)
                with tracer.span("run_iteration"):
                    for event in bench.run_iteration(queue):
                        recorder.record_event(REGION_KERNEL, event)
                with tracer.span("collect_results"):
                    for event in bench.collect_results(queue):
                        recorder.record_event(REGION_TRANSFER, event)
                if config.validate:
                    with tracer.span("validate"):
                        try:
                            bench.validate()
                        except Exception:
                            registry.counter(
                                "harness_validation_failures_total",
                                "Benchmark validations that raised",
                            ).inc(benchmark=config.benchmark)
                            raise
                        validated = True
            finally:
                bench.teardown()
        else:
            # profiles() needs per-instance parameters only; host data
            # is not generated
            pass

        with tracer.span("sample_timings", samples=config.samples):
            breakdown = iteration_time(spec, bench.profiles())
            nominal = breakdown.total_s
            loop_iterations = max(
                1, math.ceil(config.min_loop_seconds / max(nominal, 1e-9)))
            times = noisy_samples(spec, nominal, config.samples, rng,
                                  loop_iterations=loop_iterations)
            energies = _energy_samples(spec, times, breakdown.utilization, rng)
            for t, e in zip(times, energies):
                recorder.record(REGION_KERNEL, float(t), energy_j=float(e),
                                sampled=True)

        # Simulated PAPI counters (paper §4.3), replayed from the
        # memoized per-(benchmark, size) artifacts.  Deterministic and
        # RNG-free, so adding this step cannot shift the timing samples.
        with tracer.span("counter_sim", benchmark=config.benchmark,
                         size=config.size):
            artifacts = get_cell_artifacts(config.benchmark, config.size,
                                           cache=artifact_cache)
            counters = simulate_cell_counters(spec, artifacts)

        if tracemalloc.is_tracing():
            # per-cell peak allocation attribution (repro profile --memory)
            cell_span.set_attribute(
                "peak_alloc_bytes", tracemalloc.get_traced_memory()[1])

    registry.bucket_histogram(
        "harness_cell_duration_seconds",
        "Wall time spent measuring one (benchmark, size, device) cell",
    ).observe(time.perf_counter() - wall_start,
              benchmark=config.benchmark, size=config.size)
    registry.counter("harness_runs_total",
                     "Measurement groups executed").inc(
        benchmark=config.benchmark, device_class=spec.device_class.value)
    registry.counter("harness_samples_total",
                     "Timing samples collected").inc(config.samples)
    registry.counter("harness_loop_iterations_total",
                     "Benchmark loop iterations implied by the 2 s rule").inc(
        loop_iterations * config.samples)
    registry.histogram("harness_run_mean_seconds",
                       "Mean modeled kernel time per group").observe(
        float(times.mean()), benchmark=config.benchmark)

    result = RunResult(
        benchmark=config.benchmark,
        size=config.size,
        device=spec.name,
        device_class=spec.device_class.value,
        nominal_s=nominal,
        times_s=times,
        energies_j=energies,
        loop_iterations=loop_iterations,
        breakdown=breakdown,
        footprint_bytes=bench.footprint_bytes(),
        validated=validated,
        counters=counters,
        recorder=recorder,
    )
    if runlog is not None:
        runlog.write(
            "run_complete", benchmark=result.benchmark, size=result.size,
            device=result.device, device_class=result.device_class,
            validated=result.validated, loop_iterations=result.loop_iterations,
            mean_ms=result.mean_ms, mean_energy_j=result.mean_energy_j,
            nominal_s=result.nominal_s, footprint_bytes=result.footprint_bytes,
        )
    return result


def run_matrix(
    benchmark: str,
    sizes: list[str] | None = None,
    devices: list[str] | None = None,
    execute: bool = False,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 12345,
    runlog: RunLog | None = None,
    jobs: int | None = 1,
    cache=None,
    refresh: bool = False,
) -> list[RunResult]:
    """Measure a benchmark across sizes x devices (model-only default).

    Parameters
    ----------
    benchmark : str
        Registered benchmark name.
    sizes, devices : list of str, optional
        Cells to cover; default every preset size and the full Table 1
        catalog.
    execute : bool
        Run the kernels functionally and validate (default: model-only).
    samples, seed : int
        Measurement protocol knobs, forwarded to each cell's
        :class:`RunConfig`.
    runlog : RunLog, optional
        Explicit JSONL run log (default: the process-global one).
    jobs : int or None
        Worker processes for the sweep engine; ``1`` (the default) runs
        every cell in this process, exactly as before the engine
        existed, and ``None`` asks for ``os.cpu_count()`` workers.
        Per-cell seeding is process-stable, so any ``jobs`` value
        yields bit-identical samples.
    cache : repro.harness.sweep.SweepCache, optional
        Content-addressed result cache; hits skip computation entirely.
    refresh : bool
        Recompute every cell and overwrite existing cache entries.

    Returns
    -------
    list of RunResult
        One result per (size, device) cell, in row-major input order.
    """
    from .sweep import run_sweep  # deferred: sweep imports this module

    cls = get_benchmark(benchmark)
    sizes = list(sizes) if sizes else list(cls.available_sizes())
    if devices is None:
        from ..devices.catalog import device_names
        devices = list(device_names())
    runlog = runlog if runlog is not None else get_default_runlog()
    if runlog is not None:
        runlog.write("matrix_start", benchmark=benchmark, sizes=sizes,
                     devices=devices, execute=execute, jobs=jobs)
    configs = [
        RunConfig(benchmark=benchmark, size=size, device=device,
                  samples=samples, execute=execute, validate=execute,
                  seed=seed)
        for size in sizes for device in devices
    ]
    with get_tracer().span("run_matrix", benchmark=benchmark,
                           groups=len(configs), phase="sweep"):
        outcome = run_sweep(configs, jobs=jobs, cache=cache,
                            refresh=refresh, runlog=runlog)
    if runlog is not None:
        runlog.write("matrix_complete", benchmark=benchmark,
                     groups=len(outcome.results),
                     computed=outcome.computed, cached=outcome.cached)
    return outcome.results
