"""Parallel sweep engine with a content-addressed result cache.

The paper's headline artifact is a full measurement matrix — 11
benchmarks x 4 problem sizes x 15 devices, 50 samples each (§4.3).
:func:`repro.harness.runner.run_matrix` used to walk that matrix
serially in one process and recompute it from scratch on every
invocation; this module gives the harness the two properties GEMMbench
(Lokhmotov 2015) and the HPCChallenge OpenCL suite (Meyer et al. 2020)
argue reproducible benchmarking needs:

* **parallelism** — :func:`run_sweep` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs`` workers,
  default ``os.cpu_count()``).  Because each cell seeds its RNG with
  the process-stable :func:`~repro.harness.runner.cell_seed`, a
  parallel sweep produces samples **bit-identical** to a serial one;
* **memoisation** — a :class:`SweepCache` persists each cell's
  :class:`~repro.harness.runner.RunResult` keyed on a SHA-256 of the
  :class:`~repro.harness.runner.RunConfig`, the full device spec and a
  model-version stamp, so re-running a sweep only computes
  missing/invalidated cells and an interrupted matrix resumes where it
  stopped.

Observability rides along: every cell gets a ``sweep_cell`` span, the
``sweep_cells_cached_total`` / ``sweep_cells_computed_total`` counter
pair tracks cache effectiveness, and each worker's JSONL records are
merged back into the parent run log (tagged with the worker PID).

The on-disk cache-entry layout is documented in ``docs/formats.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import logging
import os
import time
import zipfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..devices.catalog import get_device
from ..perfmodel.roofline import TimeBreakdown
from ..scibench.recorder import Recorder
from ..service.store import (
    CacheBackend,
    CacheBackendError,
    LocalCacheBackend,
    parse_backend_spec,
)
from ..telemetry.metrics import default_registry
from ..telemetry.runlog import RunLog, get_default_runlog, memory_runlog
from ..telemetry.tracer import get_tracer
from .runner import RunConfig, RunResult, run_benchmark

_log = logging.getLogger(__name__)

#: Stamp mixed into every cache key.  Bump whenever the performance,
#: noise or energy models change in a way that invalidates previously
#: cached samples — every existing entry then misses and is recomputed.
#: "2": RunResult payloads gained the per-cell ``counters`` dict.
MODEL_VERSION = "2"

#: On-disk cache entry format.  ``2`` is the sharded npz envelope
#: (sample arrays as real numpy arrays, everything else in a JSON
#: ``meta`` string); ``1`` is the legacy single-JSON-file envelope,
#: still read transparently but never written.
CACHE_FORMAT = 2

#: The envelope version legacy ``.json`` entries must carry to be served.
LEGACY_CACHE_FORMAT = 1


def cell_key(config: RunConfig, model_version: str | None = None) -> str:
    """Content hash (SHA-256 hex) addressing one sweep cell.

    The digest folds in the full :class:`RunConfig`, the resolved
    device spec and the :data:`MODEL_VERSION` stamp, so any change to
    those inputs — different sample count, a re-parameterised device, a
    model bump — yields a different key.  Shared by :class:`SweepCache`
    and the :mod:`repro.regress` baseline store: a baseline cell whose
    key no longer matches a freshly computed one was recorded under a
    different model and is flagged stale.

    Parameters
    ----------
    config : RunConfig
        The cell to address.  The device name is canonicalised through
        the catalog first.
    model_version : str, optional
        Override of the global :data:`MODEL_VERSION` stamp (tests use
        this to exercise invalidation).
    """
    spec = get_device(config.device)
    fields = dataclasses.asdict(config)
    fields["device"] = spec.name
    material = {
        "model_version": (MODEL_VERSION if model_version is None
                          else model_version),
        "config": fields,
        "device_spec": dataclasses.asdict(spec),
    }
    blob = json.dumps(material, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> Path:
    """The sweep cache location used when none is given explicitly.

    ``$REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg).expanduser() / "repro"
    return Path("~/.cache/repro").expanduser()


# ----------------------------------------------------------------------
# RunResult (de)serialisation — shared by the cache and the worker IPC
# ----------------------------------------------------------------------
def result_to_payload(result: RunResult) -> dict:
    """Serialise a :class:`RunResult` to a JSON-safe dict.

    The same payload shape is used for cache entries and for shipping
    results back from worker processes, so both paths are exercised by
    the same round-trip tests.
    """
    recorder = None
    if result.recorder is not None:
        recorder = {
            "name": result.recorder.name,
            "measurements": [
                {"region": m.region, "time_s": m.time_s,
                 "energy_j": m.energy_j, "tags": dict(m.tags)}
                for m in result.recorder._measurements
            ],
        }
    return {
        "benchmark": result.benchmark,
        "size": result.size,
        "device": result.device,
        "device_class": result.device_class,
        "nominal_s": result.nominal_s,
        "times_s": [float(t) for t in result.times_s],
        "energies_j": [float(e) for e in result.energies_j],
        "loop_iterations": result.loop_iterations,
        "breakdown": dataclasses.asdict(result.breakdown),
        "footprint_bytes": result.footprint_bytes,
        "validated": result.validated,
        "counters": result.counters,
        "recorder": recorder,
    }


def result_from_payload(payload: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_payload` output."""
    recorder = None
    if payload.get("recorder") is not None:
        recorder = Recorder(payload["recorder"].get("name", ""))
        for m in payload["recorder"]["measurements"]:
            recorder.record(m["region"], m["time_s"],
                            energy_j=m.get("energy_j"), **m.get("tags", {}))
    return RunResult(
        benchmark=payload["benchmark"],
        size=payload["size"],
        device=payload["device"],
        device_class=payload["device_class"],
        nominal_s=payload["nominal_s"],
        times_s=np.asarray(payload["times_s"], dtype=float),
        energies_j=np.asarray(payload["energies_j"], dtype=float),
        loop_iterations=payload["loop_iterations"],
        breakdown=TimeBreakdown(**payload["breakdown"]),
        footprint_bytes=payload["footprint_bytes"],
        validated=payload["validated"],
        counters=payload.get("counters"),
        recorder=recorder,
    )


# ----------------------------------------------------------------------
# Content-addressed result cache
# ----------------------------------------------------------------------
def _encode_result_entry(entry: dict) -> bytes:
    """Serialise a cache envelope to the npz blob (CACHE_FORMAT 2).

    The timing/energy sample arrays — the bulk of every entry — are
    stored as real numpy arrays; the rest of the envelope rides in a
    single JSON ``meta`` string, mirroring the analysis-artifact layer.
    """
    payload = dict(entry["result"])
    times = np.asarray(payload.pop("times_s"), dtype=float)
    energies = np.asarray(payload.pop("energies_j"), dtype=float)
    meta = dict(entry)
    meta["result"] = payload
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        meta=np.asarray(json.dumps(meta, default=str)),
        times_s=times,
        energies_j=energies,
    )
    return buffer.getvalue()


def _decode_result_entry(blob: bytes) -> dict:
    """Rebuild a cache envelope from either on-disk representation.

    npz blobs (zip magic) are the canonical format; anything else is
    parsed as a legacy format-1 JSON envelope.  Raises ``ValueError``
    (or an ``OSError``/``KeyError`` subclass) on torn or alien bytes —
    the caller maps that to a logged miss.
    """
    if blob[:2] == b"PK":  # zip magic: the npz envelope
        try:
            with np.load(io.BytesIO(blob), allow_pickle=False) as data:
                entry = json.loads(str(data["meta"]))
                if entry.get("format") != CACHE_FORMAT:
                    raise ValueError(
                        f"cache entry format {entry.get('format')!r} != "
                        f"{CACHE_FORMAT}")
                entry["result"]["times_s"] = [
                    float(t) for t in data["times_s"]]
                entry["result"]["energies_j"] = [
                    float(e) for e in data["energies_j"]]
                return entry
        except zipfile.BadZipFile as exc:  # torn write / truncation
            raise ValueError(f"torn npz cache entry: {exc}") from exc
    entry = json.loads(blob.decode("utf-8"))
    if entry.get("format") != LEGACY_CACHE_FORMAT:
        raise ValueError(
            f"legacy cache entry format {entry.get('format')!r} != "
            f"{LEGACY_CACHE_FORMAT}")
    return entry


class SweepCache:
    """Content-addressed store of per-cell :class:`RunResult` entries.

    Each entry lives under ``<key[:2]>/<key>.npz`` where ``key`` is
    :meth:`key`'s SHA-256 over the cell's full configuration, the
    resolved device spec and the :data:`MODEL_VERSION` stamp.  Any
    change to those inputs — different sample count, a re-parameterised
    device, a model bump — yields a different key, so invalidation is
    simply a miss; stale entries are never served.

    Storage is pluggable (:class:`~repro.service.store.CacheBackend`):
    the default :class:`~repro.service.store.LocalCacheBackend` keeps
    the sharded directory layout (and transparently reads entries from
    the legacy flat/JSON layouts), while a
    :class:`~repro.service.store.RemoteCacheBackend`
    (``remote://host:port``) lets many worker hosts share the store of
    one ``repro serve --cache-only`` instance.  Encoding lives here, so
    every backend serves byte-identical entries.

    Local writes are atomic (temp file + ``os.replace``) and parent
    shard directories are created race-tolerantly, so concurrent
    processes sharing a store never observe torn entries; torn
    *content* (a truncated npz from a crashed legacy writer, a corrupt
    remote blob) is read as a miss with a logged warning, never a
    crash.
    """

    def __init__(self, root: str | Path | CacheBackend):
        self.backend = parse_backend_spec(root)
        if isinstance(self.backend, LocalCacheBackend):
            self.root: Path | str = self.backend.root
        else:
            self.root = self.backend.describe()

    # ------------------------------------------------------------------
    def key(self, config: RunConfig, model_version: str | None = None) -> str:
        """The cache key (SHA-256 hex digest) for one sweep cell.

        Parameters
        ----------
        config : RunConfig
            The cell to address.  The device name is canonicalised
            through the catalog and the *entire* device spec is folded
            into the digest, so retuning a device's model parameters
            invalidates its entries.
        model_version : str, optional
            Override of the global :data:`MODEL_VERSION` stamp
            (tests use this to exercise invalidation).
        """
        return cell_key(config, model_version)

    def path_for(self, key: str) -> Path:
        """Where a local backend stores ``key`` (whether or not it exists).

        Only meaningful for :class:`LocalCacheBackend` storage; remote
        stores have no client-visible paths.
        """
        if not isinstance(self.backend, LocalCacheBackend):
            raise TypeError(
                f"{self.backend.describe()} has no local entry paths")
        return self.backend.path_for("result", key)

    # ------------------------------------------------------------------
    def get(self, key: str) -> RunResult | None:
        """Load a cached result, or ``None`` on miss/corruption.

        A corrupt, torn or format-incompatible entry is treated as a
        miss with a logged warning (the sweep recomputes and overwrites
        it) rather than an error — a half-written file from a killed
        run must not wedge resumes.  Backend failures (an unreachable
        remote store) degrade the same way.
        """
        with get_tracer().span("sweep_cache_get", phase="cache_io",
                               key=key) as sp:
            try:
                blob = self.backend.read("result", key)
                if blob is None:
                    sp.set_attribute("hit", False)
                    return None
                entry = _decode_result_entry(blob)
                result = result_from_payload(entry["result"])
                sp.set_attribute("hit", True)
                return result
            except CacheBackendError as exc:
                _log.warning("sweep cache backend failed for %s: %s",
                             key, exc)
                sp.set_attribute("hit", False)
                return None
            except (OSError, ValueError, KeyError, TypeError) as exc:
                _log.warning(
                    "treating corrupt sweep-cache entry %s as a miss: %s",
                    key, exc)
                sp.set_attribute("hit", False)
                return None

    def put(self, key: str, config: RunConfig,
            result: RunResult) -> Path | str:
        """Persist one cell's result under ``key``.

        Returns the entry path for local backends (the historical
        contract), the key for path-less remote backends.  A backend
        write failure (an unreachable remote store) is logged and
        swallowed — losing a cache entry must not take the run down.
        """
        with get_tracer().span("sweep_cache_put", phase="cache_io", key=key):
            entry = {
                "format": CACHE_FORMAT,
                "model_version": MODEL_VERSION,
                "key": key,
                "config": dataclasses.asdict(config),
                "created_unix": time.time(),
                "result": result_to_payload(result),
            }
            try:
                self.backend.write("result", key, _encode_result_entry(entry))
            except CacheBackendError as exc:
                _log.warning("sweep cache backend failed to store %s: %s",
                             key, exc)
                return key
            if isinstance(self.backend, LocalCacheBackend):
                return self.path_for(key)
            return key

    # ------------------------------------------------------------------
    # Analysis artifacts (repro.harness.artifacts), stored alongside
    # the results under <root>/analysis/<key[:2]>/<key>.npz.
    # ------------------------------------------------------------------
    def artifact_path_for(self, key: str) -> Path:
        """Where a local backend stores the artifact for ``key``."""
        if not isinstance(self.backend, LocalCacheBackend):
            raise TypeError(
                f"{self.backend.describe()} has no local entry paths")
        return self.backend.path_for("artifact", key)

    def get_artifact(self, key: str):
        """Load cached :class:`~repro.harness.artifacts.CellArtifacts`.

        Corruption or layout drift is a miss, exactly like :meth:`get`.
        """
        from .artifacts import CellArtifacts

        with get_tracer().span("sweep_cache_get_artifact",
                               phase="cache_io", key=key) as sp:
            try:
                blob = self.backend.read("artifact", key)
                if blob is None:
                    sp.set_attribute("hit", False)
                    return None
                with np.load(io.BytesIO(blob), allow_pickle=False) as data:
                    meta = json.loads(str(data["meta"]))
                    artifacts = CellArtifacts(
                        benchmark=meta["benchmark"],
                        size=meta["size"],
                        trace_len=int(meta["trace_len"]),
                        trace_source=meta["trace_source"],
                        footprint_bytes=int(meta["footprint_bytes"]),
                        static_bytes=meta["static_bytes"],
                        strides=meta["strides"],
                        trace=data["trace"].astype(np.int64, copy=False),
                        branch_pcs=data["branch_pcs"].astype(
                            np.int64, copy=False),
                        branch_outcomes=data["branch_outcomes"].astype(
                            bool, copy=False),
                    )
                sp.set_attribute("hit", True)
                return artifacts
            except (CacheBackendError, OSError, ValueError, KeyError,
                    TypeError) as exc:
                _log.warning(
                    "treating corrupt artifact entry %s as a miss: %s",
                    key, exc)
                sp.set_attribute("hit", False)
                return None

    def put_artifact(self, key: str, artifacts) -> Path | str:
        """Persist one shape's artifacts under ``key``.

        Returns the entry path for local backends, the key otherwise.
        Backend write failures degrade like :meth:`put`.
        """
        with get_tracer().span("sweep_cache_put_artifact",
                               phase="cache_io", key=key):
            meta = json.dumps({
                "benchmark": artifacts.benchmark,
                "size": artifacts.size,
                "trace_len": artifacts.trace_len,
                "trace_source": artifacts.trace_source,
                "footprint_bytes": artifacts.footprint_bytes,
                "static_bytes": artifacts.static_bytes,
                "strides": artifacts.strides,
            })
            buffer = io.BytesIO()
            np.savez_compressed(
                buffer, meta=np.asarray(meta),
                trace=artifacts.trace,
                branch_pcs=artifacts.branch_pcs,
                branch_outcomes=artifacts.branch_outcomes)
            try:
                self.backend.write("artifact", key, buffer.getvalue())
            except CacheBackendError as exc:
                _log.warning(
                    "sweep cache backend failed to store artifact %s: %s",
                    key, exc)
                return key
            if isinstance(self.backend, LocalCacheBackend):
                return self.artifact_path_for(key)
            return key

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.backend.keys("result"))

    def clear(self) -> int:
        """Delete every result entry; returns how many were removed."""
        removed = 0
        for key in self.backend.keys("result"):
            if self.backend.delete("result", key):
                removed += 1
        return removed

    def __repr__(self) -> str:
        return f"<SweepCache {self.backend.describe()}: {len(self)} entries>"


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """What a sweep did: the results plus compute/cache accounting."""

    results: list[RunResult]
    computed: int
    cached: int
    wall_s: float
    jobs: int

    @property
    def cells(self) -> int:
        """Total number of cells covered by the sweep."""
        return len(self.results)


def _compute_cell(
    config: RunConfig, trace_ctx: dict | None = None,
) -> tuple[dict, list[dict], dict, list[dict]]:
    """Worker entry point: measure one cell in a child process.

    Returns the serialised result, the cell's JSONL records (captured
    in memory, each tagged with this worker's PID), a metrics snapshot
    and the worker's finished spans, so the parent can merge all three
    into its own run log, registry and trace.  The worker's registry is
    reset first: under ``fork`` it inherits the parent's accumulated
    series, and the snapshot must be a per-cell delta, not a cumulative
    copy.  ``trace_ctx`` is the parent tracer's
    :meth:`~repro.telemetry.tracer.Tracer.propagation_context` —
    ``None`` (tracing off) keeps the worker on the no-op path and ships
    no spans.  Module-level and argument-picklable so it works under
    both ``fork`` and ``spawn`` start methods.
    """
    from ..telemetry.runlog import set_default_runlog
    from ..telemetry.tracer import Tracer, set_tracer
    set_default_runlog(None)  # never write to a handle inherited from the parent
    default_registry().reset()
    tracer = Tracer.from_context(trace_ctx)
    set_tracer(tracer)  # fresh per cell: fork may inherit parent state
    runlog, buffer = memory_runlog()
    result = run_benchmark(config, runlog=runlog)
    pid = os.getpid()
    records = []
    for line in buffer.getvalue().splitlines():
        if line.strip():
            record = json.loads(line)
            record["worker_pid"] = pid
            records.append(record)
    spans = tracer.to_dicts()
    for span in spans:
        span["attributes"]["worker_pid"] = pid
    return result_to_payload(result), records, default_registry().snapshot(), spans


def run_sweep(
    configs: list[RunConfig],
    jobs: int | None = None,
    cache: SweepCache | None = None,
    refresh: bool = False,
    runlog: RunLog | None = None,
) -> SweepOutcome:
    """Measure many (benchmark, size, device) cells, in parallel, cached.

    Parameters
    ----------
    configs : list of RunConfig
        The cells to cover.  Results come back in the same order.
    jobs : int, optional
        Worker processes.  ``None`` means ``os.cpu_count()``; ``1``
        runs every cell in this process (no pool, no pickling).
        Either way the samples are bit-identical, because each cell's
        RNG seed is derived process-stably by
        :func:`~repro.harness.runner.cell_seed`.
    cache : SweepCache, optional
        When given, cells already present are restored without
        computation and newly computed cells are persisted — which is
        also how ``--resume`` continues an interrupted matrix.
    refresh : bool
        Ignore existing entries (recompute everything) but still write
        the fresh results back to the cache.
    runlog : RunLog, optional
        Parent JSONL log; defaults to the process-global one.  Child
        processes log to memory and their records are merged here,
        tagged ``worker_pid``.

    Returns
    -------
    SweepOutcome
        Results in input order plus computed/cached cell counts and
        the wall-clock duration.

    Notes
    -----
    Pending (non-cached) cells are submitted longest-modeled-first via
    :func:`repro.scheduling.sweep_execution_order` — the LPT heuristic
    the scheduler already uses for heterogeneous task placement —
    which minimises pool makespan when cell costs are skewed.
    In parallel mode the per-cell ``sweep_cell`` spans are recorded at
    completion on the parent (the tracer's span stack is per-process),
    so they mark ordering and cache state, not child-side duration.
    """
    from ..scheduling import sweep_execution_order

    tracer = get_tracer()
    registry = default_registry()
    runlog = runlog if runlog is not None else get_default_runlog()
    jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
    cached_counter = registry.counter(
        "sweep_cells_cached_total",
        "Sweep cells restored from the result cache")
    computed_counter = registry.counter(
        "sweep_cells_computed_total",
        "Sweep cells actually measured")

    start = time.perf_counter()
    if runlog is not None:
        runlog.write("sweep_start", cells=len(configs), jobs=jobs,
                     cache_dir=str(cache.root) if cache else None,
                     refresh=refresh)

    results: dict[int, RunResult] = {}
    pending: list[tuple[int, RunConfig]] = []
    keys: dict[int, str] = {}

    def _finish(i: int, config: RunConfig, result: RunResult) -> None:
        computed_counter.inc()
        if cache is not None:
            cache.put(keys[i], config, result)
        if runlog is not None:
            runlog.write("cell_computed", benchmark=config.benchmark,
                         size=config.size, device=config.device,
                         key=keys.get(i))
        results[i] = result

    with tracer.span("run_sweep", phase="sweep",
                     cells=len(configs), jobs=jobs):
        for i, config in enumerate(configs):
            hit = None
            if cache is not None:
                keys[i] = cache.key(config)
                if not refresh:
                    hit = cache.get(keys[i])
            if hit is not None:
                with tracer.span("sweep_cell", benchmark=config.benchmark,
                                 size=config.size, device=config.device,
                                 cached=True, key=keys[i]):
                    pass
                cached_counter.inc()
                if runlog is not None:
                    runlog.write("cell_cached", benchmark=config.benchmark,
                                 size=config.size, device=config.device,
                                 key=keys[i])
                results[i] = hit
            else:
                pending.append((i, config))

        if pending:
            order = sweep_execution_order([c for _, c in pending])
            if jobs == 1:
                for pos in order:
                    i, config = pending[pos]
                    with tracer.span("sweep_cell", benchmark=config.benchmark,
                                     size=config.size, device=config.device,
                                     cached=False, key=keys.get(i)):
                        result = run_benchmark(config, runlog=runlog,
                                               artifact_cache=cache)
                    _finish(i, config, result)
            else:
                trace_ctx = tracer.propagation_context()
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = {
                        pool.submit(_compute_cell, pending[pos][1],
                                    trace_ctx): pending[pos]
                        for pos in order
                    }
                    for future in as_completed(futures):
                        i, config = futures[future]
                        payload, records, metrics, spans = future.result()
                        if runlog is not None:
                            for record in records:
                                runlog.write_record(record)
                        registry.merge_snapshot(metrics)
                        with tracer.span("sweep_cell",
                                         benchmark=config.benchmark,
                                         size=config.size,
                                         device=config.device,
                                         cached=False, key=keys.get(i)):
                            # adopt the worker's spans under this cell,
                            # same topology as the serial path
                            tracer.graft(spans)
                        _finish(i, config, result_from_payload(payload))

    wall_s = time.perf_counter() - start
    outcome = SweepOutcome(
        results=[results[i] for i in range(len(configs))],
        computed=len(pending),
        cached=len(configs) - len(pending),
        wall_s=wall_s,
        jobs=jobs,
    )
    if runlog is not None:
        runlog.write("sweep_complete", cells=outcome.cells,
                     computed=outcome.computed, cached=outcome.cached,
                     wall_s=wall_s)
    return outcome
