"""Regeneration of the paper's figures (data series + shape checks).

Each ``figure*`` function produces a :class:`FigureData`: for every
panel (problem size or benchmark) the per-device box statistics that
the paper plots.  ``render`` emits the series as aligned text and CSV
(no plotting library is assumed); the ``check_*`` functions assert the
qualitative shapes the paper reports — who wins, where the gaps widen
— which is the reproduction criterion (DESIGN.md §4).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from ..devices.catalog import CATALOG, device_names
from ..devices.specs import DeviceClass
from ..dwarfs.base import SIZES
from .results import ResultSet
from .runner import run_matrix

#: Devices in Table 1 order, minus the KNL (dropped after Fig. 1, §5.1).
DEVICES_NO_KNL = tuple(n for n in device_names() if n != "Xeon Phi 7210")

#: The two devices with energy instrumentation (paper §5.2).
ENERGY_DEVICES = ("i7-6700K", "GTX 1080")

#: Benchmarks in Fig. 5's x-axis order.
ENERGY_BENCHMARKS = ("kmeans", "lud", "csr", "fft", "dwt", "gem", "srad", "crc")


@dataclass
class FigureData:
    """One figure's series: panel -> device -> box statistics."""

    figure_id: str
    title: str
    value_label: str
    panels: dict = field(default_factory=dict)
    results: ResultSet = field(default_factory=ResultSet, repr=False)

    def panel(self, name: str) -> dict:
        """One panel's device -> box-statistics mapping."""
        return self.panels[name]

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Every panel's box statistics as CSV text."""
        out = io.StringIO()
        out.write("figure,panel,device,class,mean,median,q1,q3,min,max,cov\n")
        for panel, devices in self.panels.items():
            for device, stats in devices.items():
                out.write(
                    f"{self.figure_id},{panel},{device},{stats['class']},"
                    f"{stats['mean']:.6g},{stats['median']:.6g},"
                    f"{stats['q1']:.6g},{stats['q3']:.6g},"
                    f"{stats['min']:.6g},{stats['max']:.6g},{stats['cov']:.4g}\n"
                )
        return out.getvalue()

    def render(self) -> str:
        """The figure as an ASCII bar chart, one panel per section."""
        out = io.StringIO()
        out.write(f"{self.figure_id}: {self.title}  [{self.value_label}]\n")
        for panel, devices in self.panels.items():
            out.write(f"\n  -- {panel} --\n")
            for device, stats in devices.items():
                bar = "#" * max(1, min(60, int(round(stats["rel"] * 60))))
                out.write(
                    f"  {device:16s} {stats['class']:13s} "
                    f"{stats['mean']:12.4f}  {bar}\n"
                )
        return out.getvalue()


def _box(values: np.ndarray, device_class: str) -> dict:
    q1, med, q3 = np.percentile(values, [25, 50, 75])
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
    return {
        "class": device_class,
        "mean": mean,
        "median": float(med),
        "q1": float(q1),
        "q3": float(q3),
        "min": float(values.min()),
        "max": float(values.max()),
        # like SampleSummary.cov: undefined when zero-mean samples vary
        "cov": (std / mean) if mean else (0.0 if std == 0.0 else float("nan")),
    }


def _normalise_panel(panel: dict) -> None:
    peak = max(s["mean"] for s in panel.values()) or 1.0
    for stats in panel.values():
        stats["rel"] = stats["mean"] / peak


def _time_figure(figure_id: str, title: str, benchmark: str,
                 sizes: tuple[str, ...], devices: tuple[str, ...],
                 samples: int, seed: int, jobs: int | None = 1,
                 cache=None, refresh: bool = False) -> FigureData:
    fig = FigureData(figure_id=figure_id, title=title, value_label="time (ms)")
    results = ResultSet(run_matrix(benchmark, list(sizes), list(devices),
                                   samples=samples, seed=seed, jobs=jobs,
                                   cache=cache, refresh=refresh))
    fig.results = results
    for size in sizes:
        panel = {}
        for device in devices:
            r = results.get(benchmark, size, device)
            panel[device] = _box(r.times_s * 1e3, r.device_class)
        _normalise_panel(panel)
        fig.panels[size] = panel
    return fig


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def figure1_crc(samples: int = 50, seed: int = 12345, jobs: int | None = 1,
                cache=None, refresh: bool = False) -> FigureData:
    """Fig. 1: crc kernel times on all 15 devices (including KNL)."""
    return _time_figure("Figure 1", "crc kernel execution times", "crc",
                        SIZES, tuple(device_names()), samples, seed,
                        jobs=jobs, cache=cache, refresh=refresh)


_FIG2 = (("2a", "kmeans"), ("2b", "lud"), ("2c", "csr"), ("2d", "dwt"),
         ("2e", "fft"))
_FIG3 = (("3a", "srad"), ("3b", "nw"))


def figure2(benchmark: str, samples: int = 50, seed: int = 12345,
            jobs: int | None = 1, cache=None,
            refresh: bool = False) -> FigureData:
    """Fig. 2a-2e: kmeans/lud/csr/dwt/fft on the 14 non-KNL devices."""
    sub = dict((b, i) for i, b in _FIG2)
    if benchmark not in sub:
        raise ValueError(f"figure 2 covers {sorted(sub)}, not {benchmark!r}")
    return _time_figure(f"Figure {sub[benchmark]}",
                        f"{benchmark} kernel execution times",
                        benchmark, SIZES, DEVICES_NO_KNL, samples, seed,
                        jobs=jobs, cache=cache, refresh=refresh)


def figure3(benchmark: str, samples: int = 50, seed: int = 12345,
            jobs: int | None = 1, cache=None,
            refresh: bool = False) -> FigureData:
    """Fig. 3a/3b: srad and nw on the 14 non-KNL devices."""
    sub = dict((b, i) for i, b in _FIG3)
    if benchmark not in sub:
        raise ValueError(f"figure 3 covers {sorted(sub)}, not {benchmark!r}")
    return _time_figure(f"Figure {sub[benchmark]}",
                        f"{benchmark} kernel execution times",
                        benchmark, SIZES, DEVICES_NO_KNL, samples, seed,
                        jobs=jobs, cache=cache, refresh=refresh)


def figure4(samples: int = 50, seed: int = 12345, jobs: int | None = 1,
            cache=None, refresh: bool = False) -> FigureData:
    """Fig. 4: gem / nqueens / hmm at their single evaluated size."""
    fig = FigureData(figure_id="Figure 4",
                     title="single-problem-size benchmarks",
                     value_label="time (ms)")
    for benchmark in ("gem", "nqueens", "hmm"):
        results = ResultSet(run_matrix(benchmark, ["tiny"],
                                       list(DEVICES_NO_KNL),
                                       samples=samples, seed=seed, jobs=jobs,
                                       cache=cache, refresh=refresh))
        fig.results.extend(results.results)
        panel = {}
        for device in DEVICES_NO_KNL:
            r = results.get(benchmark, "tiny", device)
            panel[device] = _box(r.times_s * 1e3, r.device_class)
        _normalise_panel(panel)
        fig.panels[benchmark] = panel
    return fig


def figure5(samples: int = 50, seed: int = 12345, jobs: int | None = 1,
            cache=None, refresh: bool = False) -> FigureData:
    """Fig. 5: kernel energy at the large size, i7-6700K vs GTX 1080."""
    fig = FigureData(figure_id="Figure 5",
                     title="kernel execution energy (large)",
                     value_label="energy (J)")
    for benchmark in ENERGY_BENCHMARKS:
        size = "large"
        results = ResultSet(run_matrix(benchmark, [size],
                                       list(ENERGY_DEVICES),
                                       samples=samples, seed=seed, jobs=jobs,
                                       cache=cache, refresh=refresh))
        fig.results.extend(results.results)
        panel = {}
        for device in ENERGY_DEVICES:
            r = results.get(benchmark, size, device)
            panel[device] = _box(r.energies_j, r.device_class)
        _normalise_panel(panel)
        fig.panels[benchmark] = panel
    return fig


# ----------------------------------------------------------------------
# Shape checks: the paper's qualitative findings
# ----------------------------------------------------------------------
def class_means(fig: FigureData, panel: str) -> dict[str, float]:
    """Mean of device means per accelerator class within a panel."""
    sums: dict[str, list[float]] = {}
    for stats in fig.panels[panel].values():
        sums.setdefault(stats["class"], []).append(stats["mean"])
    return {cls: float(np.mean(v)) for cls, v in sums.items()}


def check_fig1_cpu_wins(fig: FigureData) -> bool:
    """crc: CPUs are the fastest class at every size; KNL is poor."""
    for panel in fig.panels:
        means = class_means(fig, panel)
        cpu = means[DeviceClass.CPU.value]
        others = [v for k, v in means.items() if k != DeviceClass.CPU.value]
        if not all(cpu <= o for o in others):
            return False
        if means[DeviceClass.MIC.value] < cpu:
            return False
    return True


def check_fig3a_gap_widens(fig: FigureData) -> bool:
    """srad: CPU/GPU mean ratio strictly widens tiny -> large."""
    ratios = []
    for size in SIZES:
        means = class_means(fig, size)
        gpu = min(means.get(DeviceClass.CONSUMER_GPU.value, np.inf),
                  means.get(DeviceClass.HPC_GPU.value, np.inf))
        ratios.append(means[DeviceClass.CPU.value] / gpu)
    return all(b > a for a, b in zip(ratios, ratios[1:]))


def check_fig3b_amd_degrades(fig: FigureData) -> bool:
    """nw: AMD-vs-NVIDIA ratio widens with size; CPU ~ NVIDIA at large."""
    from ..devices.catalog import get_device
    from ..devices.specs import Vendor

    def vendor_mean(panel: dict, vendor: Vendor) -> float:
        vals = [s["mean"] for d, s in panel.items()
                if get_device(d).vendor == vendor and get_device(d).is_gpu]
        return float(np.mean(vals))

    ratios = []
    for size in SIZES:
        panel = fig.panels[size]
        ratios.append(vendor_mean(panel, Vendor.AMD) /
                      vendor_mean(panel, Vendor.NVIDIA))
    widens = ratios[-1] > ratios[0] and ratios[-1] > 1.5
    means = class_means(fig, "large")
    nvidia_large = vendor_mean(fig.panels["large"], Vendor.NVIDIA)
    cpu_comparable = (
        means[DeviceClass.CPU.value] < 3.0 * nvidia_large
        and nvidia_large < 3.0 * means[DeviceClass.CPU.value]
    )
    return widens and cpu_comparable


def check_fig5_cpu_energy_higher(fig: FigureData) -> bool:
    """Energy: CPU > GPU for every benchmark except crc (where CPU wins)."""
    cpu, gpu = ENERGY_DEVICES
    for benchmark, panel in fig.panels.items():
        cpu_e = panel[cpu]["mean"]
        gpu_e = panel[gpu]["mean"]
        if benchmark == "crc":
            if cpu_e >= gpu_e:
                return False
        elif cpu_e <= gpu_e:
            return False
    return True


def check_hpc_vs_consumer(fig: FigureData, size: str = "large") -> bool:
    """HPC GPUs beat same-generation consumer GPUs but lose to modern.

    Paper §5.1: K20m/K40m/S9150 (HPC) outperform HD 7970 / R9 290X-era
    consumer boards, yet are "always beaten by more modern GPUs"
    (Pascal / Fiji / Polaris).
    """
    panel = fig.panels[size]
    hpc = np.mean([panel[d]["mean"] for d in ("K20m", "K40m", "FirePro S9150")])
    same_gen = np.mean([panel[d]["mean"] for d in ("HD 7970", "R9 290X", "R9 295x2")])
    modern = np.mean([panel[d]["mean"]
                      for d in ("Titan X", "GTX 1080", "GTX 1080 Ti",
                                "R9 Fury X", "RX 480")])
    return modern <= hpc <= same_gen * 1.15


def check_cov_tracks_clock(results: ResultSet) -> bool:
    """CoV is larger on lower-clocked devices, regardless of type.

    Uses rank correlation: individual CoV estimates are noisy (OS-noise
    spikes), but the ordering with clock frequency is robust.
    """
    from scipy import stats as sps

    from ..devices.catalog import get_device
    clocks, covs = [], []
    for r in results:
        clocks.append(get_device(r.device).clock_ghz)
        covs.append(r.time_summary.cov)
    return float(sps.spearmanr(clocks, covs).statistic) < -0.3
