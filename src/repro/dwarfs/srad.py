"""srad — the Structured Grid dwarf.

Speckle Reducing Anisotropic Diffusion (Rodinia), an iterative 4-point
stencil used to despeckle ultrasound imagery.  Two kernels per
diffusion iteration, as in the OpenCL original:

* ``srad1`` — directional derivatives, instantaneous coefficient of
  variation, diffusion coefficient ``c``;
* ``srad2`` — divergence and image update ``J += (lambda/4) * div``.

Boundaries are clamped (Neumann), matching Rodinia's index clamping.
The paper passes ``Φ1 Φ2 0 127 0 127 0.5 1``: grid rows/cols, a
statistics ROI (y1 y2 x1 x2), the diffusion coefficient lambda and the
iteration count (Table 3).

Validation runs an independently-coded float64 reference (padded-array
formulation rather than the kernels' roll-based one) and compares by
relative norm.  Being memory-bandwidth limited, this dwarf is the
paper's example of a code whose CPU-GPU gap widens with problem size
(Fig. 3a).
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)


def _clamped_shifts(a: np.ndarray):
    """Neighbour views with clamped (Neumann) boundaries."""
    north = np.vstack([a[:1], a[:-1]])
    south = np.vstack([a[1:], a[-1:]])
    west = np.hstack([a[:, :1], a[:, :-1]])
    east = np.hstack([a[:, 1:], a[:, -1:]])
    return north, south, west, east


def _srad1_kernel(nd, j, c, dn, ds, dw, de, q0sqr):
    """Derivatives, ICOV and diffusion coefficient."""
    q0sqr = float(q0sqr)
    north, south, west, east = _clamped_shifts(j)
    dn[...] = north - j
    ds[...] = south - j
    dw[...] = west - j
    de[...] = east - j
    g2 = (dn**2 + ds**2 + dw**2 + de**2) / (j * j)
    l = (dn + ds + dw + de) / j
    num = 0.5 * g2 - 0.0625 * (l * l)
    den = (1.0 + 0.25 * l) ** 2
    qsqr = num / den
    den2 = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr))
    c[...] = 1.0 / (1.0 + den2)
    np.clip(c, 0.0, 1.0, out=c)


def _srad2_kernel(nd, j, c, dn, ds, dw, de, lam):
    """Divergence with south/east coefficient lookups; image update."""
    lam = float(lam)
    _, c_south, _, c_east = _clamped_shifts(c)
    div = c_south * ds + c * dn + c_east * de + c * dw
    j += (lam / 4.0) * div


class SRAD(Benchmark):
    """Structured Grid dwarf: speckle-reducing anisotropic diffusion."""

    name = "srad"
    dwarf = "Structured Grid"
    presets = {
        "tiny": (80, 16),
        "small": (128, 80),
        "medium": (1024, 336),
        "large": (2048, 1024),
    }
    args_template = "{phi1} {phi2} 0 127 0 127 0.5 1"

    def __init__(self, rows: int, cols: int, lam: float = 0.5, iterations: int = 1,
                 roi: tuple[int, int, int, int] = (0, 127, 0, 127), seed: int = 3):
        super().__init__()
        if rows < 2 or cols < 2:
            raise ValueError(f"grid must be at least 2x2, got {rows}x{cols}")
        self.rows = int(rows)
        self.cols = int(cols)
        self.lam = float(lam)
        self.iterations = int(iterations)
        # clamp the ROI to the grid, as the benchmark does
        y1, y2, x1, x2 = roi
        self.roi = (min(y1, rows - 1), min(y2, rows - 1),
                    min(x1, cols - 1), min(x2, cols - 1))
        self.seed = seed
        self.image: np.ndarray | None = None
        self.result: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "SRAD":
        rows, cols = phi
        return cls(rows=rows, cols=cols, **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "SRAD":
        """Parse ``rows cols y1 y2 x1 x2 lambda iterations``."""
        if len(argv) != 8:
            raise ValueError(
                f"srad: expected 8 positional arguments, got {len(argv)}"
            )
        rows, cols, y1, y2, x1, x2 = (int(v) for v in argv[:6])
        return cls(rows=rows, cols=cols, roi=(y1, y2, x1, x2),
                   lam=float(argv[6]), iterations=int(argv[7]), **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """J, c and the four derivative arrays (6 fp32 planes)."""
        return 6 * self.rows * self.cols * 4

    def static_launches(self) -> StaticLaunchModel:
        plane = self.rows * self.cols * 4
        keys = ("j_img", "c", "dn", "ds", "dw", "de")
        bind = {key: (key, 0) for key in keys}
        launches: list[StaticLaunch] = []
        for _ in range(self.iterations):
            # q0sqr is data-dependent at runtime; any finite value works
            # for the footprint (it never feeds an index expression)
            launches.append(StaticLaunch(
                "srad1", (self.rows * self.cols,),
                scalars={"q0sqr": 0.5}, buffers=bind))
            launches.append(StaticLaunch(
                "srad2", (self.rows * self.cols,),
                scalars={"lambda_": self.lam}, buffers=bind))
        return StaticLaunchModel(
            source=kernels_cl.SRAD_CL,
            macros={"ROWS": self.rows, "COLS": self.cols},
            buffers={key: StaticBuffer(key, plane) for key in keys},
            launches=tuple(launches),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        # Rodinia exponentiates the input image; speckled positive field.
        base = rng.uniform(0.0, 1.0, size=(self.rows, self.cols))
        self.image = np.exp(base).astype(np.float32)

        shape = (self.rows, self.cols)
        self.buf_j = context.buffer_like(self.image)
        self.buf_c = context.buffer_like(np.zeros(shape, np.float32))
        self.buf_dn = context.buffer_like(np.zeros(shape, np.float32))
        self.buf_ds = context.buffer_like(np.zeros(shape, np.float32))
        self.buf_dw = context.buffer_like(np.zeros(shape, np.float32))
        self.buf_de = context.buffer_like(np.zeros(shape, np.float32))
        program = Program(context, [
            KernelSource("srad1", _srad1_kernel, self._profile_srad1,
                         cl_source=kernels_cl.SRAD_CL),
            KernelSource("srad2", _srad2_kernel, self._profile_srad2,
                         cl_source=kernels_cl.SRAD_CL),
        ]).build()
        self.kernels = program.all_kernels()
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_write_buffer(self.buf_j, self.image)]

    def _q0sqr(self, j: np.ndarray) -> float:
        """ICOV reference value from the ROI statistics."""
        y1, y2, x1, x2 = self.roi
        roi = j[y1 : y2 + 1, x1 : x2 + 1]
        mean = float(roi.mean())
        var = float(roi.var())
        return var / (mean * mean) if mean else 0.0

    def run_iteration(self, queue) -> list[Event]:
        """``iterations`` diffusion steps of two kernels each."""
        self._require_setup()
        queue.enqueue_write_buffer(self.buf_j, self.image)
        events = []
        n_items = self.rows * self.cols
        for _ in range(self.iterations):
            q0sqr = self._q0sqr(self.buf_j.array)
            k1 = self.kernels["srad1"].set_args(
                self.buf_j, self.buf_c, self.buf_dn, self.buf_ds,
                self.buf_dw, self.buf_de, q0sqr,
            )
            events.append(queue.enqueue_nd_range_kernel(k1, (n_items,)))
            k2 = self.kernels["srad2"].set_args(
                self.buf_j, self.buf_c, self.buf_dn, self.buf_ds,
                self.buf_dw, self.buf_de, self.lam,
            )
            events.append(queue.enqueue_nd_range_kernel(k2, (n_items,)))
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.result = np.empty_like(self.image)
        return [queue.enqueue_read_buffer(self.buf_j, self.result)]

    # ------------------------------------------------------------------
    def _reference(self) -> np.ndarray:
        """Float64 reference with an explicitly padded formulation."""
        j = self.image.astype(np.float64)
        for _ in range(self.iterations):
            y1, y2, x1, x2 = self.roi
            roi = j[y1 : y2 + 1, x1 : x2 + 1]
            q0sqr = roi.var() / (roi.mean() ** 2)
            padded = np.pad(j, 1, mode="edge")
            dn = padded[:-2, 1:-1] - j
            ds = padded[2:, 1:-1] - j
            dw = padded[1:-1, :-2] - j
            de = padded[1:-1, 2:] - j
            g2 = (dn**2 + ds**2 + dw**2 + de**2) / j**2
            l = (dn + ds + dw + de) / j
            qsqr = (0.5 * g2 - 0.0625 * l**2) / (1.0 + 0.25 * l) ** 2
            c = 1.0 / (1.0 + (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr)))
            c = np.clip(c, 0.0, 1.0)
            cp = np.pad(c, 1, mode="edge")
            div = cp[2:, 1:-1] * ds + c * dn + cp[1:-1, 2:] * de + c * dw
            j = j + (self.lam / 4.0) * div
        return j

    def validate(self) -> None:
        if self.result is None:
            raise ValidationError("srad: results were never collected")
        assert_close(self.result, self._reference(), 1e-4,
                     "srad: diffusion result vs float64 reference")

    # ------------------------------------------------------------------
    def _stencil_profile(self, name: str, flops_per_point: float,
                         reads: float, writes: float) -> KernelProfile:
        n = self.rows * self.cols
        return KernelProfile(
            name=name,
            flops=flops_per_point * n,
            int_ops=6.0 * n,
            bytes_read=reads * n * 4.0,
            bytes_written=writes * n * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=n,
            seq_fraction=0.85,
            strided_fraction=0.15,          # north/south neighbours
        )

    def _profile_srad1(self, nd, *args) -> KernelProfile:
        return self._stencil_profile("srad1", 32.0, reads=5.0, writes=5.0)

    def _profile_srad2(self, nd, *args) -> KernelProfile:
        return self._stencil_profile("srad2", 10.0, reads=6.0, writes=1.0)

    def profiles(self) -> list[KernelProfile]:
        return [
            self._profile_srad1(None).scaled(self.iterations),
            self._profile_srad2(None).scaled(self.iterations),
        ]

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Streaming over the planes with row-stride neighbour touches."""
        plane = self.rows * self.cols * 4
        return trace_mod.TraceSpec.single(
            trace_mod.seq(plane * 6, passes=1, budget=("floordiv", 2)),
            trace_mod.strided_component(plane, self.cols * 4, passes=2,
                                        budget=("floordiv", 2)),
        )
