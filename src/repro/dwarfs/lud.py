"""lud — the Dense Linear Algebra dwarf.

Blocked LU decomposition (no pivoting) of an NxN matrix, following the
OpenDwarfs/Rodinia structure of three kernels per block step:

* ``lud_diagonal``  — factorise the BxB diagonal block;
* ``lud_perimeter`` — triangular-solve the row and column panels;
* ``lud_internal``  — rank-B update of the trailing submatrix (GEMM-
  like; this is where the 2/3·N³ flops live).

The input matrix is generated diagonally dominant so factorisation
without pivoting is numerically safe.  Validation reconstructs L·U and
compares against the original matrix by relative Frobenius norm
(paper §4.4.2's "compare norms" utility).
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)

#: Block size used by the OpenDwarfs kernels.
BLOCK = 16


def _diagonal_kernel(nd, a, n, k, b):
    """In-place unblocked LU of A[k:k+b, k:k+b]."""
    n, k, b = int(n), int(k), int(b)
    blk = a.reshape(n, n)[k:k + b, k:k + b]
    for j in range(b - 1):
        pivot = blk[j, j]
        blk[j + 1:, j] /= pivot
        blk[j + 1:, j + 1:] -= np.outer(blk[j + 1:, j], blk[j, j + 1:])


def _perimeter_kernel(nd, a, n, k, b):
    """Panel updates: row panel via L^-1, column panel via U^-1."""
    n, k, b = int(n), int(k), int(b)
    m = a.reshape(n, n)
    diag = m[k:k + b, k:k + b]
    lower = np.tril(diag, -1) + np.eye(b, dtype=a.dtype)
    upper = np.triu(diag)
    if k + b < n:
        # forward-substitute the row panel: L * X = A_row
        row = m[k:k + b, k + b:]
        for j in range(1, b):
            row[j] -= lower[j, :j] @ row[:j]
        # back-substitute the column panel: X * U = A_col
        col = m[k + b:, k:k + b]
        for j in range(b):
            if j:
                col[:, j] -= col[:, :j] @ upper[:j, j]
            col[:, j] /= upper[j, j]


def _internal_kernel(nd, a, n, k, b):
    """Trailing update: A22 -= A21 @ A12."""
    n, k, b = int(n), int(k), int(b)
    m = a.reshape(n, n)
    if k + b < n:
        m[k + b:, k + b:] -= m[k + b:, k:k + b] @ m[k:k + b, k + b:]


class LUD(Benchmark):
    """Dense Linear Algebra dwarf: blocked LU decomposition."""

    name = "lud"
    dwarf = "Dense Linear Algebra"
    presets = {"tiny": 80, "small": 240, "medium": 1440, "large": 4096}
    args_template = "-s {phi}"

    def __init__(self, n: int, block: int = BLOCK, seed: int = 7):
        super().__init__()
        if n < block or n % block:
            raise ValueError(f"matrix size {n} must be a positive multiple of {block}")
        self.n = int(n)
        self.block = int(block)
        self.seed = seed
        self.matrix: np.ndarray | None = None
        self.result: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "LUD":
        return cls(n=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "LUD":
        """Parse the Table 3 form ``-s N``."""
        if len(argv) != 2 or argv[0] != "-s":
            raise ValueError(f"lud: expected '-s N', got {argv!r}")
        return cls(n=int(argv[1]), **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        return self.n * self.n * 4

    def static_launches(self) -> StaticLaunchModel:
        n, b = self.n, self.block
        bind = {"a": ("a", 0)}
        launches: list[StaticLaunch] = []
        for k in range(0, n, b):
            remaining = n - k - b
            launches.append(StaticLaunch(
                "lud_diagonal", (b,),
                scalars={"n": n, "k": k, "b": b}, buffers=bind))
            if remaining > 0:
                launches.append(StaticLaunch(
                    "lud_perimeter", (2 * remaining,),
                    scalars={"n": n, "k": k, "b": b}, buffers=bind))
                launches.append(StaticLaunch(
                    "lud_internal", (remaining * remaining,),
                    scalars={"n": n, "k": k, "b": b}, buffers=bind))
        return StaticLaunchModel(
            source=kernels_cl.LUD_CL,
            buffers={"a": StaticBuffer("a", n * n * 4)},
            launches=tuple(launches),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        a = rng.uniform(-1.0, 1.0, size=(self.n, self.n)).astype(np.float32)
        # diagonal dominance keeps no-pivot LU stable
        a[np.diag_indices(self.n)] = np.abs(a).sum(axis=1) + 1.0
        self.matrix = a
        self.buf_matrix = context.buffer_like(a)
        program = Program(context, [
            KernelSource("lud_diagonal", _diagonal_kernel, self._profile_diagonal,
                         cl_source=kernels_cl.LUD_CL),
            KernelSource("lud_perimeter", _perimeter_kernel, self._profile_perimeter,
                         cl_source=kernels_cl.LUD_CL),
            KernelSource("lud_internal", _internal_kernel, self._profile_internal,
                         cl_source=kernels_cl.LUD_CL),
        ]).build()
        self.kernels = program.all_kernels()
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_write_buffer(self.buf_matrix, self.matrix)]

    def run_iteration(self, queue) -> list[Event]:
        """One full decomposition: 3 kernels per block step.

        Because the decomposition is in-place, each iteration first
        rewrites the buffer with the pristine matrix (the OpenDwarfs
        loop re-transfers inputs per repetition for the same reason);
        the rewrite is a transfer, not kernel time.
        """
        self._require_setup()
        queue.enqueue_write_buffer(self.buf_matrix, self.matrix)
        events = []
        n, b = self.n, self.block
        for k in range(0, n, b):
            remaining = n - k - b
            diag = self.kernels["lud_diagonal"].set_args(self.buf_matrix, n, k, b)
            events.append(queue.enqueue_nd_range_kernel(diag, (b,)))
            if remaining > 0:
                perim = self.kernels["lud_perimeter"].set_args(self.buf_matrix, n, k, b)
                events.append(queue.enqueue_nd_range_kernel(perim, (2 * remaining,)))
                internal = self.kernels["lud_internal"].set_args(self.buf_matrix, n, k, b)
                events.append(queue.enqueue_nd_range_kernel(internal, (remaining * remaining,)))
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.result = np.empty_like(self.matrix)
        return [queue.enqueue_read_buffer(self.buf_matrix, self.result)]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.result is None:
            raise ValidationError("lud: results were never collected")
        lu = self.result.astype(np.float64)
        lower = np.tril(lu, -1) + np.eye(self.n)
        upper = np.triu(lu)
        # fp32 rounding grows with n; scale the tolerance accordingly
        rtol = 1e-5 * np.sqrt(self.n) * 10
        assert_close(lower @ upper, self.matrix.astype(np.float64), rtol,
                     "lud: L@U reconstruction")

    # ------------------------------------------------------------------
    def _step_sizes(self) -> np.ndarray:
        """Trailing-matrix size m_k for each block step."""
        return np.array([self.n - k - self.block for k in range(0, self.n, self.block)])

    def _profile_diagonal(self, nd, a, n, k, b) -> KernelProfile:
        b = int(b)
        return KernelProfile(
            name="lud_diagonal",
            flops=(2.0 / 3.0) * b**3,
            int_ops=b * b,
            bytes_read=b * b * 4.0,
            bytes_written=b * b * 4.0,
            working_set_bytes=b * b * 4.0,
            work_items=b,
            seq_fraction=0.7,
            strided_fraction=0.3,
            serial_ops=3.0 * b * b,  # sequential elimination over columns
        )

    def _profile_perimeter(self, nd, a, n, k, b) -> KernelProfile:
        n, k, b = int(n), int(k), int(b)
        m = max(n - k - b, 0)
        return KernelProfile(
            name="lud_perimeter",
            flops=2.0 * b * b * m,
            int_ops=b * m,
            bytes_read=(2 * m * b + b * b) * 4.0,
            bytes_written=2 * m * b * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=max(2 * m, 1),
            seq_fraction=0.5,
            strided_fraction=0.5,  # the column panel is column-major access
        )

    def _profile_internal(self, nd, a, n, k, b) -> KernelProfile:
        n, k, b = int(n), int(k), int(b)
        m = max(n - k - b, 0)
        return KernelProfile(
            name="lud_internal",
            flops=2.0 * b * m * m,
            int_ops=m * m,
            bytes_read=(2 * m * b + m * m) * 4.0,
            bytes_written=m * m * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=max(m * m, 1),
            seq_fraction=0.8,
            strided_fraction=0.2,
        )

    def profiles(self) -> list[KernelProfile]:
        """Per-iteration characterization: all block steps aggregated.

        Returns one profile per kernel with totals summed over steps
        and ``launches`` equal to the step count, so the launch-
        overhead model sees every enqueue.
        """
        n, b = self.n, self.block
        steps = list(range(0, n, b))
        sizes = [max(n - k - b, 0) for k in steps]
        nonzero = [m for m in sizes if m > 0]
        ws = float(self.footprint_bytes())
        # Profile quantities are PER LAUNCH: totals over all block steps
        # divided by the launch count (kernel_time multiplies back).
        out = [KernelProfile(
            name="lud_diagonal",
            flops=(2.0 / 3.0) * b**3,
            int_ops=float(b * b),
            bytes_read=b * b * 4.0,
            bytes_written=b * b * 4.0,
            working_set_bytes=b * b * 4.0,
            work_items=b,
            seq_fraction=0.7,
            strided_fraction=0.3,
            serial_ops=3.0 * b * b,
            launches=len(steps),
        )]
        if nonzero:
            k = len(nonzero)
            avg_m = float(sum(nonzero)) / k
            avg_m2 = float(sum(m * m for m in nonzero)) / k
            out.append(KernelProfile(
                name="lud_perimeter",
                flops=2.0 * b * b * avg_m,
                int_ops=b * avg_m,
                bytes_read=(2 * avg_m * b + b * b) * 4.0,
                bytes_written=2 * avg_m * b * 4.0,
                working_set_bytes=ws,
                work_items=max(int(2 * avg_m), 1),
                seq_fraction=0.5,
                strided_fraction=0.5,
                launches=k,
            ))
            out.append(KernelProfile(
                name="lud_internal",
                flops=2.0 * b * avg_m2,
                int_ops=avg_m2,
                bytes_read=(2 * b * avg_m + avg_m2) * 4.0,
                bytes_written=avg_m2 * 4.0,
                working_set_bytes=ws,
                work_items=max(int(avg_m2), 1),
                seq_fraction=0.8,
                strided_fraction=0.2,
                launches=k,
            ))
        return out

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Blocked traversal: LU re-touches panels of the matrix."""
        return trace_mod.TraceSpec.single(
            trace_mod.blocked_component(self.footprint_bytes(),
                                        self.block * self.n * 4, reuse=3))
