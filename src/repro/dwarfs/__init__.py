"""The Extended OpenDwarfs benchmarks, one per Berkeley dwarf.

=========  ==============================  ==========================
name       dwarf                           figure
=========  ==============================  ==========================
kmeans     MapReduce                       Fig. 2a
lud        Dense Linear Algebra            Fig. 2b
csr        Sparse Linear Algebra           Fig. 2c
dwt        Spectral Methods                Fig. 2d
fft        Spectral Methods                Fig. 2e
srad       Structured Grid                 Fig. 3a
nw         Dynamic Programming             Fig. 3b
crc        Combinational Logic             Fig. 1
gem        N-Body Methods                  Fig. 4a
nqueens    Backtrack & Branch and Bound    Fig. 4b
hmm        Graphical Models                Fig. 4c
=========  ==============================  ==========================
"""

from .base import Benchmark, SIZES, ValidationError, assert_close
from .crc import CRC
from .csr import CSR
from .dwt import DWT
from .fft import FFT
from .gem import GEM
from .hmm import HMM
from .kmeans import KMeans
from .lud import LUD
from .nqueens import NQueens
from .nw import NW
from .registry import (
    BENCHMARKS,
    create,
    get_benchmark,
    program_arguments_table,
    scale_parameters_table,
)
from .srad import SRAD

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "CRC",
    "CSR",
    "DWT",
    "FFT",
    "GEM",
    "HMM",
    "KMeans",
    "LUD",
    "NQueens",
    "NW",
    "SIZES",
    "SRAD",
    "ValidationError",
    "assert_close",
    "create",
    "get_benchmark",
    "program_arguments_table",
    "scale_parameters_table",
]
