"""OpenCL C sources for the dwarf kernels.

The Extended OpenDwarfs suite is, at bottom, a set of ``.cl`` files;
these are their equivalents for this reproduction.  They are not
compiled here (the simulator executes the vectorised Python bodies),
but they are **parsed**: `Program.build` extracts each ``__kernel``
signature and the queue verifies at enqueue that the bound argument
count matches — turning host/kernel mismatches into build-time errors
instead of the silent wrong answers the paper's curation fought.

The sources double as the precise statement of what each Python body
implements, one work item at a time.
"""

KMEANS_CL = r"""
// MapReduce dwarf: nearest-centroid assignment (one work item = one point)
__kernel void kmeans_assign(__global const float *features,
                            __global const float *clusters,
                            __global int *membership)
{
    const int point = get_global_id(0);
    const int n_features = N_FEATURES;   // -D at build time
    const int n_clusters = N_CLUSTERS;
    // point-major feature rows are the paper's layout: each work item
    // deliberately strides N_FEATURES elements through 'features'.
    // repro-lint: allow(uncoalesced-access: features)
    float best = FLT_MAX;
    int best_cluster = 0;
    for (int c = 0; c < n_clusters; ++c) {
        float dist = 0.0f;
        for (int f = 0; f < n_features; ++f) {
            const float d = features[point * n_features + f]
                          - clusters[c * n_features + f];
            dist += d * d;
        }
        if (dist < best) { best = dist; best_cluster = c; }
    }
    membership[point] = best_cluster;
}
"""

LUD_CL = r"""
// Dense Linear Algebra dwarf: blocked LU, three kernels per block step
__kernel void lud_diagonal(__global float *a, int n, int k, int b)
{
    // factorise the BxB diagonal block in place (one work group)
    const int tid = get_local_id(0);
    for (int j = 0; j < b - 1; ++j) {
        barrier(CLK_GLOBAL_MEM_FENCE);
        for (int i = j + 1 + tid; i < b; i += get_local_size(0)) {
            a[(k + i) * n + (k + j)] /= a[(k + j) * n + (k + j)];
            for (int col = j + 1; col < b; ++col)
                a[(k + i) * n + (k + col)] -=
                    a[(k + i) * n + (k + j)] * a[(k + j) * n + (k + col)];
        }
    }
}

__kernel void lud_perimeter(__global float *a, int n, int k, int b)
{
    // triangular-solve the row panel (L^-1 A12) and column panel (A21 U^-1)
    const int gid = get_global_id(0);
    const int remaining = n - k - b;
    if (gid < remaining) {            // one work item = one panel column
        const int col = k + b + gid;
        for (int j = 1; j < b; ++j)
            for (int p = 0; p < j; ++p)
                a[(k + j) * n + col] -= a[(k + j) * n + (k + p)]
                                      * a[(k + p) * n + col];
    } else {                           // one work item = one panel row
        const int row = k + b + (gid - remaining);
        for (int j = 0; j < b; ++j) {
            for (int p = 0; p < j; ++p)
                a[row * n + (k + j)] -= a[row * n + (k + p)]
                                      * a[(k + p) * n + (k + j)];
            a[row * n + (k + j)] /= a[(k + j) * n + (k + j)];
        }
    }
}

__kernel void lud_internal(__global float *a, int n, int k, int b)
{
    // rank-B update of the trailing submatrix (one work item = one cell)
    const int remaining = n - k - b;
    const int i = k + b + get_global_id(0) / remaining;
    const int j = k + b + get_global_id(0) % remaining;
    float acc = 0.0f;
    for (int p = 0; p < b; ++p)
        acc += a[i * n + (k + p)] * a[(k + p) * n + j];
    a[i * n + j] -= acc;
}
"""

CSR_CL = r"""
// Sparse Linear Algebra dwarf: CSR SpMV (one work item = one row)
__kernel void csr_spmv(__global const int *row_ptr,
                       __global const int *col_idx,
                       __global const float *values,
                       __global const float *x,
                       __global float *y)
{
    const int row = get_global_id(0);
    float acc = 0.0f;
    for (int i = row_ptr[row]; i < row_ptr[row + 1]; ++i)
        acc += values[i] * x[col_idx[i]];   // the gather
    y[row] = acc;
}
"""

FFT_CL = r"""
// Spectral Methods dwarf: one radix-2 Stockham DIF stage
// (one work item = one butterfly; ping-pong buffers, no bit reversal)
__kernel void fft_radix2(__global const float2 *src,
                         __global float2 *dst,
                         int n_total, int stage)
{
    const int gid = get_global_id(0);           // 0 .. n/2-1
    const int n = n_total >> stage;
    const int s = 1 << stage;
    const int m = n >> 1;
    const int p = gid / s, q = gid % s;
    const float2 a = src[q + s * p];
    const float2 b = src[q + s * (p + m)];
    const float angle = -2.0f * M_PI_F * (float)p / (float)n;
    const float2 w = (float2)(cos(angle), sin(angle));
    dst[q + s * (2 * p)]     = a + b;
    const float2 d = a - b;
    dst[q + s * (2 * p + 1)] = (float2)(d.x * w.x - d.y * w.y,
                                        d.x * w.y + d.y * w.x);
}
"""

DWT_CL = r"""
// Spectral Methods dwarf: CDF 5/3 lifting, row and column passes
__kernel void dwt_rows(__global float *image, int h, int w)
{
    const int row = get_global_id(0) / w;       // pixel-parallel NDRange
    if (row >= h) return;                       // range may be padded up
    if (get_global_id(0) % w) return;           // one lane leads each row
    // predict then update along the row (symmetric extension at edges)
    for (int i = 0; i < w / 2; ++i) {
        const int rgt = (2*i + 2 < w) ? 2*i + 2 : w - 2;
        image[row * w + 2*i + 1] -=
            0.5f * (image[row * w + 2*i] + image[row * w + rgt]);
    }
    for (int i = 0; i < (w + 1) / 2; ++i) {
        const int lft = (i > 0) ? 2*i - 1 : 1;
        const int rgt = (2*i + 1 < w) ? 2*i + 1 : w - 1;
        image[row * w + 2*i] +=
            0.25f * (image[row * w + lft] + image[row * w + rgt]);
    }
}

__kernel void dwt_cols(__global float *image, int h, int w)
{
    const int col = get_global_id(0) % w;
    if (get_global_id(0) / w) return;
    for (int i = 0; i < h / 2; ++i) {
        const int bot = (2*i + 2 < h) ? 2*i + 2 : h - 2;
        image[(2*i + 1) * w + col] -=
            0.5f * (image[(2*i) * w + col] + image[bot * w + col]);
    }
    for (int i = 0; i < (h + 1) / 2; ++i) {
        const int top = (i > 0) ? 2*i - 1 : 1;
        const int bot = (2*i + 1 < h) ? 2*i + 1 : h - 1;
        image[(2*i) * w + col] +=
            0.25f * (image[top * w + col] + image[bot * w + col]);
    }
}
"""

SRAD_CL = r"""
// Structured Grid dwarf: SRAD, two kernels per diffusion iteration
__kernel void srad1(__global const float *j_img, __global float *c,
                    __global float *dn, __global float *ds,
                    __global float *dw, __global float *de, float q0sqr)
{
    const int idx = get_global_id(0);
    const int row = idx / COLS, col = idx % COLS;
    const int n = (row > 0)        ? idx - COLS : idx;
    const int s = (row < ROWS - 1) ? idx + COLS : idx;
    const int w = (col > 0)        ? idx - 1    : idx;
    const int e = (col < COLS - 1) ? idx + 1    : idx;
    const float jc = j_img[idx];
    dn[idx] = j_img[n] - jc;  ds[idx] = j_img[s] - jc;
    dw[idx] = j_img[w] - jc;  de[idx] = j_img[e] - jc;
    const float g2 = (dn[idx]*dn[idx] + ds[idx]*ds[idx]
                    + dw[idx]*dw[idx] + de[idx]*de[idx]) / (jc * jc);
    const float l  = (dn[idx] + ds[idx] + dw[idx] + de[idx]) / jc;
    const float num = 0.5f * g2 - 0.0625f * l * l;
    const float den = (1.0f + 0.25f * l) * (1.0f + 0.25f * l);
    const float qsqr = num / den;
    c[idx] = clamp(1.0f / (1.0f + (qsqr - q0sqr)
                               / (q0sqr * (1.0f + q0sqr))), 0.0f, 1.0f);
}

__kernel void srad2(__global float *j_img, __global const float *c,
                    __global const float *dn, __global const float *ds,
                    __global const float *dw, __global const float *de,
                    float lambda_)
{
    const int idx = get_global_id(0);
    const int row = idx / COLS, col = idx % COLS;
    const int s = (row < ROWS - 1) ? idx + COLS : idx;
    const int e = (col < COLS - 1) ? idx + 1    : idx;
    const float div = c[s] * ds[idx] + c[idx] * dn[idx]
                    + c[e] * de[idx] + c[idx] * dw[idx];
    j_img[idx] += 0.25f * lambda_ * div;
}
"""

CRC_CL = r"""
// Combinational Logic dwarf: table-driven CRC-32, one byte-serial chain
// per work item (per page); results combined on the host
__kernel void crc_pages(__global const uchar *pages,
                        __global const int *lengths,
                        __constant uint *table,
                        __global uint *crcs)
{
    const int page = get_global_id(0);
    // page-serial chains are the point of the dwarf (dependent
    // lookups, not bandwidth); the page-major stride is intended.
    // repro-lint: allow(uncoalesced-access: pages)
    // the dynamic profile prices the benchmark as ONE chain of
    // n_pages * PAGE_BYTES dependent steps (work_items = 1); the IR
    // sees n_pages independent page chains.  Both are defensible
    // serializations, so the parallelism-group comparison is moot:
    // repro-lint: allow(aiwc-divergence: parallelism)
    uint crc = 0xFFFFFFFFu;
    for (int i = 0; i < lengths[page]; ++i)       // the dependent chain
        crc = table[(crc ^ pages[page * PAGE_BYTES + i]) & 0xFFu]
            ^ (crc >> 8);
    crcs[page] = crc ^ 0xFFFFFFFFu;
}
"""

NW_CL = r"""
// Dynamic Programming dwarf: one kernel launch per block anti-diagonal
__kernel void nw_diagonal(__global int *score,
                          __global const int *similarity,
                          int n, int block, int diag, int penalty)
{
    const int block_i = max(0, diag - (n / block) + 1) + get_group_id(0);
    const int block_j = diag - block_i;
    // the 2B-1 intra-block cell diagonals, lock-stepped by barriers
    for (int t = 0; t < 2 * block - 1; ++t) {
        const int li = get_local_id(0);
        const int lj = t - li;
        if (lj >= 0 && lj < block) {
            const int i = 1 + block_i * block + li;
            const int j = 1 + block_j * block + lj;
            const int m = score[(i-1) * (n+1) + (j-1)]
                        + similarity[(i-1) * n + (j-1)];
            const int del = score[(i-1) * (n+1) + j] - penalty;
            const int ins = score[i * (n+1) + (j-1)] - penalty;
            score[i * (n+1) + j] = max(m, max(del, ins));
        }
        barrier(CLK_GLOBAL_MEM_FENCE);
    }
}
"""

GEM_CL = r"""
// N-Body Methods dwarf: Coulomb potential at molecular-surface vertices
__kernel void gem_potential(__global const float4 *atoms,
                            __global const float *vertices,
                            __global float *potential)
{
    const int v = get_global_id(0);
    const float px = vertices[3 * v];             // packed (x, y, z) triples
    const float py = vertices[3 * v + 1];
    const float pz = vertices[3 * v + 2];
    float phi = 0.0f;
    for (int a = 0; a < N_ATOMS; ++a) {           // tiled via local mem
        const float4 q = atoms[a];
        const float dx = px - q.x, dy = py - q.y, dz = pz - q.z;
        phi += q.w * rsqrt(dx*dx + dy*dy + dz*dz + SOFTENING);
    }
    potential[v] = phi;
}
"""

NQUEENS_CL = r"""
// Backtrack & Branch-and-Bound dwarf
__kernel void nqueens_count(int n,
                            __global const int *prefix_cols,
                            __global const int *prefix_dl,
                            __global const int *prefix_dr,
                            __global long *counts)
{
    // one work item = one depth-2 prefix sub-problem; iterative
    // bitmask DFS over the remaining rows.  Only one of the two
    // kernels in this file is registered per run (exact vs estimator
    // mode), so the host-body cross-check is suppressed for both:
    // repro-lint: allow(missing-kernel-body)
    // the backtracking loop is elided, so the static op count sees
    // only the prefix setup while the dynamic profile prices the full
    // data-dependent search tree (ops, granularity, divergence):
    // repro-lint: allow(aiwc-divergence: compute)
    // repro-lint: allow(aiwc-divergence: parallelism)
    // repro-lint: allow(aiwc-divergence: control)
    const int gid = get_global_id(0);
    int stack_free[32];
    int depth = PREFIX_DEPTH;
    int cols = prefix_cols[gid], dl = prefix_dl[gid], dr = prefix_dr[gid];
    long count = 0;
    const int full = (1 << n) - 1;
    stack_free[depth] = full & ~(cols | dl | dr);
    /* ... bitmask backtracking loop elided for brevity ... */
    counts[gid] = count;
}

__kernel void nqueens_estimate(int n,
                               __global const long *seeds,
                               __global double *estimates)
{
    // one work item = WALKS_PER_ITEM Knuth random descents; the
    // descent loop using n is elided, and exact-mode runs register
    // only nqueens_count:
    // repro-lint: allow(missing-kernel-body)
    // repro-lint: allow(unused-param: n)
    const int gid = get_global_id(0);
    ulong state = (ulong)seeds[gid];
    double total = 0.0;
    /* ... xorshift descent loop elided for brevity ... */
    estimates[gid] = total / WALKS_PER_ITEM;
}
"""

HMM_CL = r"""
// Graphical Models dwarf: Baum-Welch, Rabiner-scaled
__kernel void hmm_forward(__global const float *a, __global const float *b,
                          __global const float *pi, __global const int *obs,
                          __global float *alpha, __global float *scale, int t)
{
    const int j = get_global_id(0);               // one item = one state
    float acc = (t == 0)
        ? pi[j] * b[j * N_SYMBOLS + obs[0]]
        : 0.0f;
    if (t > 0) {
        for (int i = 0; i < N_STATES; ++i)
            acc += alpha[(t-1) * N_STATES + i] * a[i * N_STATES + j];
        acc *= b[j * N_SYMBOLS + obs[t]];
    }
    alpha[t * N_STATES + j] = acc;                // scaled in a follow-up pass
    // the scaling pass that consumes 'scale' runs host-side here:
    // repro-lint: allow(unused-param: scale)
}

__kernel void hmm_backward(__global const float *a, __global const float *b,
                           __global const int *obs, __global float *beta,
                           __global const float *scale, int t)
{
    const int i = get_global_id(0);
    if (t == T_OBS - 1) {                         // base case: no successor
        beta[t * N_STATES + i] = scale[t];
        return;
    }
    float acc = 0.0f;
    for (int j = 0; j < N_STATES; ++j)
        acc += a[i * N_STATES + j] * b[j * N_SYMBOLS + obs[t+1]]
             * beta[(t+1) * N_STATES + j];
    beta[t * N_STATES + i] = scale[t] * acc;
}

__kernel void hmm_estimate_pi(__global const float *alpha,
                              __global const float *beta,
                              __global const float *scale,
                              __global float *pi_out)
{
    const int i = get_global_id(0);
    pi_out[i] = alpha[i] * beta[i] / scale[0];    // normalised afterwards
}

__kernel void hmm_estimate_a(__global const float *a, __global const float *b,
                             __global const int *obs,
                             __global const float *alpha,
                             __global const float *beta,
                             __global float *a_out)
{
    const int i = get_global_id(0) / N_STATES;
    const int j = get_global_id(0) % N_STATES;
    float num = 0.0f, den = 0.0f;
    for (int t = 0; t < T_OBS - 1; ++t) {
        num += alpha[t * N_STATES + i] * a[i * N_STATES + j]
             * b[j * N_SYMBOLS + obs[t+1]] * beta[(t+1) * N_STATES + j];
        den += alpha[t * N_STATES + i] * beta[t * N_STATES + i];
    }
    a_out[i * N_STATES + j] = num / den;
}

__kernel void hmm_estimate_b(__global const int *obs,
                             __global const float *alpha,
                             __global const float *beta,
                             __global const float *scale,
                             __global float *b_out)
{
    const int j = get_global_id(0) / N_SYMBOLS;
    const int k = get_global_id(0) % N_SYMBOLS;
    float num = 0.0f, den = 0.0f;
    for (int t = 0; t < T_OBS; ++t) {
        const float gamma = alpha[t * N_STATES + j]
                          * beta[t * N_STATES + j] / scale[t];
        if (obs[t] == k) num += gamma;
        den += gamma;
    }
    b_out[j * N_SYMBOLS + k] = num / den;
}
"""

CWT_CL = r"""
// Spectral Methods extension: Morlet CWT, frequency-domain per scale
__kernel void cwt_fft(__global const float *signal,
                      __global float2 *signal_hat)
{
    /* forward FFT of the input (radix-2 stages as in fft_radix2);
       the stage loop is elided here:
       repro-lint: allow(unused-param: signal)
       repro-lint: allow(unused-param: signal_hat) */
}

__kernel void cwt_scale(__global const float2 *signal_hat,
                        __global float2 *out,
                        float scale, int n, float dt)
{
    // the hand-written trace models the host-side inverse-FFT
    // shuffle (a strided/random mix) that no kernel in this source
    // performs; the IR correctly sees pure unit-stride bin sweeps:
    // repro-lint: allow(aiwc-divergence: memory)
    const int k = get_global_id(0);               // one item = one bin
    const float omega = 2.0f * M_PI_F * ((k <= n/2) ? k : k - n) / (n * dt);
    float psi = 0.0f;
    if (omega > 0.0f) {
        const float d = scale * omega - OMEGA0;
        psi = PI_QUARTER_INV * exp(-0.5f * d * d)
            * sqrt(2.0f * M_PI_F * scale / dt);
    }
    out[k] = signal_hat[k] * psi;                 // inverse FFT follows
}
"""

BFS_CL = r"""
// Graph Traversal extension: one kernel launch per frontier level
__kernel void bfs_level(__global const int *row_ptr,
                        __global const int *columns,
                        __global int *levels,
                        __global uchar *frontier_flags, int depth)
{
    const int v = get_global_id(0);
    if (!frontier_flags[v]) return;
    frontier_flags[v] = 0;
    // level-synchronous BFS: concurrent discoveries of a vertex all
    // store the same depth / the same flag, so the collisions are
    // idempotent by construction.
    // repro-lint: allow(data-race: levels)
    // repro-lint: allow(data-race: frontier_flags)
    // the static model enqueues one representative full-NDRange
    // launch, while the dynamic profile prices the whole depth-D
    // level sequence with per-level frontier sizes — launch count
    // and width necessarily disagree, as does the frontier-masked
    // divergence share:
    // repro-lint: allow(aiwc-divergence: parallelism)
    // repro-lint: allow(aiwc-divergence: control)
    for (int e = row_ptr[v]; e < row_ptr[v + 1]; ++e) {
        const int u = columns[e];                 // the gather
        if (levels[u] < 0) {
            levels[u] = depth + 1;                // benign write race
            frontier_flags[u] = 1;
        }
    }
}
"""

FSM_CL = r"""
// Finite State Machine extension: per-chunk transition-function
// composition (each work item runs its chunk from every start state)
__kernel void fsm_compose(__global const uchar *text,
                          __global const int *transitions,
                          __global const long *matches,
                          __global int *chunk_maps,
                          __global long *chunk_counts, int chunk_bytes)
{
    const int chunk = get_global_id(0);
    // per-chunk result rows (N_STATES entries each) are written once
    // at chunk end; the chunk-major stride is inherent to the
    // composition scheme.
    // repro-lint: allow(uncoalesced-access: chunk_maps)
    // repro-lint: allow(uncoalesced-access: chunk_counts)
    // the IR proves every table-walk op sits on the loop-carried
    // state chain (serial_fraction 1.0); the dynamic profile prices
    // the walks as parallel int ops with a small per-item chain term.
    // The static view is the stricter one, so the parallelism-group
    // comparison is suppressed rather than recalibrated:
    // repro-lint: allow(aiwc-divergence: parallelism)
    int state[N_STATES];
    long count[N_STATES];
    for (int s = 0; s < N_STATES; ++s) { state[s] = s; count[s] = 0; }
    const int start = chunk * chunk_bytes;
    for (int i = 0; i < chunk_bytes && start + i < TEXT_BYTES; ++i) {
        const uchar sym = text[start + i];
        for (int s = 0; s < N_STATES; ++s) {      // the dependent chain
            state[s] = transitions[state[s] * ALPHABET + sym];
            count[s] += matches[state[s]];
        }
    }
    for (int s = 0; s < N_STATES; ++s) {
        chunk_maps[chunk * N_STATES + s] = state[s];
        chunk_counts[chunk * N_STATES + s] = count[s];
    }
}
"""

UMESH_CL = r"""
// Unstructured Grid extension: weighted Jacobi over CSR adjacency
__kernel void umesh_relax(__global const int *row_ptr,
                          __global const int *columns,
                          __global const uchar *interior,
                          __global const float *values_in,
                          __global float *values_out, float omega)
{
    const int v = get_global_id(0);
    if (!interior[v]) { values_out[v] = values_in[v]; return; }
    float acc = 0.0f;
    const int deg = row_ptr[v + 1] - row_ptr[v];
    for (int e = row_ptr[v]; e < row_ptr[v + 1]; ++e)
        acc += values_in[columns[e]];             // the gather
    values_out[v] = (1.0f - omega) * values_in[v]
                  + omega * acc / (float)deg;
}
"""

#: Every source keyed by benchmark name.
SOURCES = {
    "kmeans": KMEANS_CL,
    "lud": LUD_CL,
    "csr": CSR_CL,
    "fft": FFT_CL,
    "dwt": DWT_CL,
    "srad": SRAD_CL,
    "crc": CRC_CL,
    "nw": NW_CL,
    "gem": GEM_CL,
    "nqueens": NQUEENS_CL,
    "hmm": HMM_CL,
    "cwt": CWT_CL,
    "bfs": BFS_CL,
    "fsm": FSM_CL,
    "umesh": UMESH_CL,
}
