"""fsm — the Finite State Machine dwarf (extension).

Another dwarf absent from the paper's evaluated set (§2 aims for full
coverage).  The benchmark is multi-pattern string matching with an
Aho-Corasick automaton — built from scratch here — executed the way
GPU FSM codes parallelise an inherently serial machine:

1. ``fsm_compose``: the text is cut into chunks; each work item runs
   its chunk from *every* possible start state, producing the chunk's
   state-transition function (a vector S -> S) and per-start-state
   match counts.  This is the classic function-composition
   parallelisation of FSMs.
2. The host folds the per-chunk functions left to right (cheap: one
   table lookup per chunk) to find each chunk's true entry state and
   accumulates the match counts.

Validation: a direct serial Aho-Corasick scan of the whole text.
"""

from __future__ import annotations

import collections

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError)

#: Alphabet size (byte text folded to this many symbols).
ALPHABET = 16

#: Bytes each work item processes.
CHUNK_BYTES = 1024

#: Default pattern set (over the folded alphabet, as symbol tuples).
DEFAULT_PATTERNS = (
    (1, 2, 3), (3, 2, 1), (0, 0, 0, 0), (5, 6), (7, 7, 7),
    (1, 2, 3, 4, 5), (9, 8, 9), (15, 0, 15),
)


def build_aho_corasick(patterns=DEFAULT_PATTERNS, alphabet: int = ALPHABET):
    """Aho-Corasick automaton as dense tables.

    Returns ``(transitions, matches)``: ``transitions`` is an (S,
    alphabet) int32 goto-with-failure table; ``matches[s]`` counts the
    patterns ending at state ``s`` (including via suffix links).
    """
    # trie construction
    children: list[dict[int, int]] = [{}]
    outputs: list[int] = [0]
    for pattern in patterns:
        if not pattern:
            raise ValueError("empty pattern")
        state = 0
        for symbol in pattern:
            if not 0 <= symbol < alphabet:
                raise ValueError(f"symbol {symbol} outside alphabet {alphabet}")
            if symbol not in children[state]:
                children.append({})
                outputs.append(0)
                children[state][symbol] = len(children) - 1
            state = children[state][symbol]
        outputs[state] += 1

    n_states = len(children)
    fail = [0] * n_states
    queue = collections.deque()
    for symbol, nxt in children[0].items():
        queue.append(nxt)
    while queue:
        state = queue.popleft()
        for symbol, nxt in children[state].items():
            queue.append(nxt)
            f = fail[state]
            while f and symbol not in children[f]:
                f = fail[f]
            fail[nxt] = children[f].get(symbol, 0)
            if fail[nxt] == nxt:
                fail[nxt] = 0
            outputs[nxt] += outputs[fail[nxt]]

    transitions = np.zeros((n_states, alphabet), dtype=np.int32)
    for state in range(n_states):
        for symbol in range(alphabet):
            s = state
            while s and symbol not in children[s]:
                s = fail[s]
            transitions[state, symbol] = children[s].get(symbol, 0)
    return transitions, np.asarray(outputs, dtype=np.int64)


def _fsm_compose_kernel(nd, text, transitions, matches, chunk_maps,
                        chunk_counts, chunk_bytes):
    """Per-chunk state function + match counts from every start state.

    All chunks and all start states advance together, vectorised; the
    byte loop is the FSM's inherent serial chain.
    """
    chunk_bytes = int(chunk_bytes)
    n = len(text)
    n_chunks = (n + chunk_bytes - 1) // chunk_bytes
    n_states = transitions.shape[0]
    # states[c, s]: current state of chunk c when started in state s
    states = np.tile(np.arange(n_states, dtype=np.int32), (n_chunks, 1))
    counts = np.zeros((n_chunks, n_states), dtype=np.int64)
    for offset in range(chunk_bytes):
        pos = np.arange(n_chunks) * chunk_bytes + offset
        live = pos < n
        if not live.any():
            break
        symbols = text[pos[live]]
        states[live] = transitions[states[live], symbols[:, None]]
        counts[live] += matches[states[live]]
    chunk_maps[...] = states
    chunk_counts[...] = counts


class FSM(Benchmark):
    """Finite State Machine dwarf: Aho-Corasick multi-pattern matching."""

    name = "fsm"
    dwarf = "Finite State Machine"
    presets = {"tiny": 16384, "small": 196608, "medium": 6291456,
               "large": 33554432}
    args_template = "{phi} 1024"

    def __init__(self, n_bytes: int, chunk_bytes: int = CHUNK_BYTES,
                 patterns=DEFAULT_PATTERNS, seed: int = 47):
        super().__init__()
        if n_bytes <= 0 or chunk_bytes <= 0:
            raise ValueError("text and chunk sizes must be positive")
        self.n_bytes = int(n_bytes)
        self.chunk_bytes = int(chunk_bytes)
        self.n_chunks = (self.n_bytes + self.chunk_bytes - 1) // self.chunk_bytes
        self.patterns = tuple(tuple(p) for p in patterns)
        self.seed = seed
        self.transitions, self.match_table = build_aho_corasick(
            self.patterns, ALPHABET)
        self.n_states = self.transitions.shape[0]
        self.total_matches: int | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "FSM":
        return cls(n_bytes=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "FSM":
        """Parse ``N [chunk_bytes]``."""
        if not 1 <= len(argv) <= 2:
            raise ValueError(f"fsm: expected 'N [chunk]', got {argv!r}")
        kwargs = dict(n_bytes=int(argv[0]))
        if len(argv) == 2:
            kwargs["chunk_bytes"] = int(argv[1])
        return cls(**kwargs, **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Text + DFA tables + per-chunk maps and counters."""
        return (self.n_bytes
                + self.transitions.nbytes + self.match_table.nbytes
                + self.n_chunks * self.n_states * 4     # chunk maps
                + self.n_chunks * self.n_states * 8)    # chunk counts

    def static_launches(self) -> StaticLaunchModel:
        nc, ns = self.n_chunks, self.n_states
        return StaticLaunchModel(
            source=kernels_cl.FSM_CL,
            macros={"N_STATES": ns, "ALPHABET": ALPHABET,
                    "TEXT_BYTES": self.n_bytes},
            buffers={
                "text": StaticBuffer("text", self.n_bytes),
                "transitions": StaticBuffer(
                    "transitions", ns * ALPHABET * 4),
                "matches": StaticBuffer("matches", ns * 8),
                "chunk_maps": StaticBuffer("chunk_maps", nc * ns * 4),
                "chunk_counts": StaticBuffer("chunk_counts", nc * ns * 8),
            },
            launches=(
                StaticLaunch(
                    "fsm_compose", (nc,),
                    scalars={"chunk_bytes": self.chunk_bytes},
                    buffers={"text": ("text", 0),
                             "transitions": ("transitions", 0),
                             "matches": ("matches", 0),
                             "chunk_maps": ("chunk_maps", 0),
                             "chunk_counts": ("chunk_counts", 0)},
                ),
            ),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        self.text = rng.integers(0, ALPHABET, self.n_bytes, dtype=np.uint8)

        self.buf_text = context.buffer_like(self.text, MemFlags.READ_ONLY)
        self.buf_transitions = context.buffer_like(self.transitions,
                                                   MemFlags.READ_ONLY)
        self.buf_matches = context.buffer_like(self.match_table,
                                               MemFlags.READ_ONLY)
        self.buf_maps = context.buffer_like(
            np.zeros((self.n_chunks, self.n_states), np.int32))
        self.buf_counts = context.buffer_like(
            np.zeros((self.n_chunks, self.n_states), np.int64))
        program = Program(context, [
            KernelSource("fsm_compose", _fsm_compose_kernel,
                         self._profile_compose, cl_source=kernels_cl.FSM_CL),
        ]).build()
        self.kernel = program.create_kernel("fsm_compose").set_args(
            self.buf_text, self.buf_transitions, self.buf_matches,
            self.buf_maps, self.buf_counts, self.chunk_bytes)
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [
            queue.enqueue_write_buffer(self.buf_text, self.text),
            queue.enqueue_write_buffer(self.buf_transitions, self.transitions),
            queue.enqueue_write_buffer(self.buf_matches, self.match_table),
        ]

    def run_iteration(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_nd_range_kernel(self.kernel, (self.n_chunks,))]

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        maps = np.empty((self.n_chunks, self.n_states), np.int32)
        counts = np.empty((self.n_chunks, self.n_states), np.int64)
        events = [
            queue.enqueue_read_buffer(self.buf_maps, maps),
            queue.enqueue_read_buffer(self.buf_counts, counts),
        ]
        # host fold: resolve each chunk's true entry state
        state = 0
        total = 0
        for chunk in range(self.n_chunks):
            total += int(counts[chunk, state])
            state = int(maps[chunk, state])
        self.total_matches = total
        self._final_state = state
        return events

    # ------------------------------------------------------------------
    def _reference_serial(self) -> int:
        """Direct serial Aho-Corasick scan of the whole text."""
        state, total = 0, 0
        transitions, matches = self.transitions, self.match_table
        for symbol in self.text.tolist():
            state = int(transitions[state, symbol])
            total += int(matches[state])
        return total

    def validate(self) -> None:
        if self.total_matches is None:
            raise ValidationError("fsm: results were never collected")
        expected = self._reference_serial()
        if self.total_matches != expected:
            raise ValidationError(
                f"fsm: counted {self.total_matches} matches, serial scan "
                f"found {expected}")

    # ------------------------------------------------------------------
    def _profile_compose(self, nd, *args) -> KernelProfile:
        # every chunk advances |S| machine replicas over its bytes
        total_steps = float(self.n_bytes) * self.n_states
        return KernelProfile(
            name="fsm_compose",
            flops=0.0,
            int_ops=4.0 * total_steps,
            bytes_read=float(self.n_bytes) + total_steps * 4.0,
            bytes_written=self.n_chunks * self.n_states * 12.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=self.n_chunks,
            seq_fraction=0.5,
            strided_fraction=0.0,
            random_fraction=0.5,          # transition-table lookups
            branch_fraction=0.1,
            serial_ops=0.0,
            chain_ops=4.0 * self.chunk_bytes,  # the per-chunk byte chain
        )

    def profiles(self) -> list[KernelProfile]:
        return [self._profile_compose(None)]

    def trace_spec(self) -> trace_mod.TraceSpec:
        return trace_mod.TraceSpec.single(
            trace_mod.seq(self.n_bytes, element_bytes=1, passes=1,
                          budget=("floordiv", 2)),
            trace_mod.random_component(self.transitions.nbytes, seed_offset=5,
                                       offset=self.n_bytes,
                                       budget=("floordiv", 2)),
        )
