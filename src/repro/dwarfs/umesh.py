"""umesh — the Unstructured Grid dwarf (extension).

The last of the Berkeley dwarfs missing from the paper's evaluated set.
The benchmark performs weighted Jacobi relaxation of a scalar field
over an *unstructured* triangular mesh: a Delaunay triangulation of
random points (via scipy.spatial), with vertex adjacency stored in CSR
form.  Unlike ``srad``'s structured 5-point stencil, every vertex has
an irregular neighbour list reached through indirection — the dwarf's
defining access pattern ("updates on an irregular grid where
connectivity is explicit").

Boundary vertices (on the convex hull) hold Dirichlet values; interior
vertices relax toward their neighbour average.  Validation compares
against a float64 reference and checks the discrete maximum principle
(relaxed interior values stay within the field's range).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)

#: Relaxation weight (under-relaxed Jacobi).
OMEGA = 0.8

#: Relaxation sweeps per timed iteration.
SWEEPS = 4


def build_mesh(n_points: int, seed: int):
    """Delaunay-triangulate random points; return CSR vertex adjacency.

    Returns ``(points, row_ptr, columns, boundary_mask)`` where
    ``boundary_mask`` flags convex-hull vertices.
    """
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 1.0, size=(n_points, 2))
    tri = Delaunay(points)
    # vertex adjacency from triangle edges (both directions)
    edges = np.concatenate([
        tri.simplices[:, [0, 1]], tri.simplices[:, [1, 2]],
        tri.simplices[:, [2, 0]],
    ])
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    # deduplicate
    keys = src.astype(np.int64) * n_points + dst
    unique = np.unique(keys)
    src = (unique // n_points).astype(np.int64)
    dst = (unique % n_points).astype(np.int32)
    counts = np.bincount(src, minlength=n_points)
    row_ptr = np.zeros(n_points + 1, dtype=np.int32)
    np.cumsum(counts, out=row_ptr[1:])
    boundary = np.zeros(n_points, dtype=bool)
    boundary[np.unique(tri.convex_hull)] = True
    return points.astype(np.float32), row_ptr, dst, boundary


def _relax_kernel(nd, row_ptr, columns, interior, values_in, values_out, omega):
    """One weighted-Jacobi sweep, vectorised via segment means."""
    omega = float(omega)
    neighbour_vals = values_in[columns].astype(np.float64)
    sums = np.add.reduceat(neighbour_vals, row_ptr[:-1].astype(np.int64))
    degrees = np.diff(row_ptr)
    # reduceat yields garbage for empty segments; Delaunay vertices
    # always have neighbours, but guard anyway
    degrees = np.maximum(degrees, 1)
    averages = (sums / degrees).astype(np.float32)
    values_out[...] = values_in
    values_out[interior] = ((1.0 - omega) * values_in[interior]
                            + omega * averages[interior])


class UMesh(Benchmark):
    """Unstructured Grid dwarf: Jacobi relaxation on a Delaunay mesh."""

    name = "umesh"
    dwarf = "Unstructured Grid"
    presets = {"tiny": 512, "small": 4352, "medium": 139264, "large": 557056}
    args_template = "{phi} 4"

    def __init__(self, n_points: int, sweeps: int = SWEEPS, omega: float = OMEGA,
                 seed: int = 61):
        super().__init__()
        if n_points < 8:
            raise ValueError(f"mesh needs at least 8 points, got {n_points}")
        self.n = int(n_points)
        self.sweeps = int(sweeps)
        self.omega = float(omega)
        self.seed = seed
        self.values_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "UMesh":
        return cls(n_points=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "UMesh":
        """Parse ``N [sweeps]``."""
        if not 1 <= len(argv) <= 2:
            raise ValueError(f"umesh: expected 'N [sweeps]', got {argv!r}")
        kwargs = dict(n_points=int(argv[0]))
        if len(argv) == 2:
            kwargs["sweeps"] = int(argv[1])
        return cls(**kwargs, **overrides)

    # ------------------------------------------------------------------
    def _edge_estimate(self) -> int:
        # a planar triangulation has < 3n edges; each stored twice
        return 6 * self.n

    def footprint_bytes(self) -> int:
        edges = (len(self.columns) if hasattr(self, "columns")
                 else self._edge_estimate())
        return ((self.n + 1) * 4 + edges * 4    # CSR adjacency
                + 2 * self.n * 4                # ping-pong value arrays
                + self.n)                       # interior mask

    def static_launches(self) -> StaticLaunchModel:
        n = self.n
        edges = (len(self.columns) if hasattr(self, "columns")
                 else self._edge_estimate())
        launches: list[StaticLaunch] = []
        src, dst = "values_a", "values_b"
        for _ in range(self.sweeps):
            launches.append(StaticLaunch(
                "umesh_relax", (n,),
                scalars={"omega": self.omega},
                buffers={"row_ptr": ("row_ptr", 0),
                         "columns": ("columns", 0),
                         "interior": ("interior", 0),
                         "values_in": (src, 0),
                         "values_out": (dst, 0)}))
            src, dst = dst, src
        return StaticLaunchModel(
            source=kernels_cl.UMESH_CL,
            buffers={
                "row_ptr": StaticBuffer("row_ptr", (n + 1) * 4),
                "columns": StaticBuffer("columns", edges * 4),
                "interior": StaticBuffer("interior", n),
                "values_a": StaticBuffer("values_a", n * 4),
                "values_b": StaticBuffer("values_b", n * 4),
            },
            launches=tuple(launches),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        points, self.row_ptr, self.columns, boundary = build_mesh(
            self.n, self.seed)
        self.points = points
        self.interior = ~boundary
        rng = np.random.default_rng(self.seed + 1)
        # boundary-driven field: hot left edge, cold right, noisy interior
        values = rng.uniform(0.0, 1.0, self.n).astype(np.float32)
        values[boundary] = (1.0 - points[boundary, 0]).astype(np.float32)
        self.initial_values = values

        self.buf_row_ptr = context.buffer_like(self.row_ptr, MemFlags.READ_ONLY)
        self.buf_columns = context.buffer_like(self.columns, MemFlags.READ_ONLY)
        self.buf_interior = context.buffer_like(
            self.interior.astype(np.uint8), MemFlags.READ_ONLY)
        self.buf_a = context.buffer_like(values)
        self.buf_b = context.buffer_like(np.zeros_like(values))
        program = Program(context, [
            KernelSource("umesh_relax", _relax_kernel, self._profile_relax,
                         cl_source=kernels_cl.UMESH_CL),
        ]).build()
        self.kernel = program.create_kernel("umesh_relax")
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [
            queue.enqueue_write_buffer(self.buf_row_ptr, self.row_ptr),
            queue.enqueue_write_buffer(self.buf_columns, self.columns),
            queue.enqueue_write_buffer(
                self.buf_interior, self.interior.astype(np.uint8)),
            queue.enqueue_write_buffer(self.buf_a, self.initial_values),
        ]

    def run_iteration(self, queue) -> list[Event]:
        """``sweeps`` ping-pong relaxation launches."""
        self._require_setup()
        queue.enqueue_write_buffer(self.buf_a, self.initial_values)
        events = []
        src, dst = self.buf_a, self.buf_b
        for _ in range(self.sweeps):
            # the kernel wants the boolean mask; buffer holds uint8
            self.kernel.set_args(self.buf_row_ptr, self.buf_columns,
                                 self.buf_interior.array.view(bool),
                                 src, dst, self.omega)
            events.append(queue.enqueue_nd_range_kernel(self.kernel, (self.n,)))
            src, dst = dst, src
        self._final = src
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.values_out = np.empty(self.n, dtype=np.float32)
        return [queue.enqueue_read_buffer(self._final, self.values_out)]

    # ------------------------------------------------------------------
    def _reference(self) -> np.ndarray:
        """Float64 reference with an explicit per-vertex loop structure."""
        values = self.initial_values.astype(np.float64)
        interior = np.nonzero(self.interior)[0]
        for _ in range(self.sweeps):
            nxt = values.copy()
            for v in interior:
                neigh = self.columns[self.row_ptr[v]:self.row_ptr[v + 1]]
                nxt[v] = ((1 - self.omega) * values[v]
                          + self.omega * values[neigh].mean())
            values = nxt
        return values

    def _reference_vectorised(self) -> np.ndarray:
        """Float64 reference via reduceat (for large meshes)."""
        values = self.initial_values.astype(np.float64)
        degrees = np.maximum(np.diff(self.row_ptr), 1)
        starts = self.row_ptr[:-1].astype(np.int64)
        for _ in range(self.sweeps):
            sums = np.add.reduceat(values[self.columns], starts)
            avg = sums / degrees
            nxt = values.copy()
            nxt[self.interior] = ((1 - self.omega) * values[self.interior]
                                  + self.omega * avg[self.interior])
            values = nxt
        return values

    def validate(self) -> None:
        if self.values_out is None:
            raise ValidationError("umesh: results were never collected")
        reference = (self._reference() if self.n <= 2048
                     else self._reference_vectorised())
        assert_close(self.values_out, reference, 1e-4,
                     "umesh: relaxation vs float64 reference")
        # discrete maximum principle
        lo = float(self.initial_values.min()) - 1e-5
        hi = float(self.initial_values.max()) + 1e-5
        if self.values_out.min() < lo or self.values_out.max() > hi:
            raise ValidationError(
                "umesh: relaxed values escape the initial range "
                f"[{lo:.4f}, {hi:.4f}]")

    def residual(self) -> float:
        """Mean |v - neighbour average| over interior vertices."""
        if self.values_out is None:
            raise ValidationError("umesh: results were never collected")
        values = self.values_out.astype(np.float64)
        degrees = np.maximum(np.diff(self.row_ptr), 1)
        sums = np.add.reduceat(values[self.columns],
                               self.row_ptr[:-1].astype(np.int64))
        avg = sums / degrees
        return float(np.abs(values - avg)[self.interior].mean())

    # ------------------------------------------------------------------
    def _profile_relax(self, nd, *args) -> KernelProfile:
        edges = (len(self.columns) if hasattr(self, "columns")
                 else self._edge_estimate())
        return KernelProfile(
            name="umesh_relax",
            flops=3.0 * self.n + float(edges),
            int_ops=2.0 * float(edges),
            bytes_read=edges * 8.0 + self.n * 9.0,
            bytes_written=self.n * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=self.n,
            seq_fraction=0.35,
            strided_fraction=0.05,
            random_fraction=0.60,          # the neighbour-value gather
            branch_fraction=0.1,
        )

    def profiles(self) -> list[KernelProfile]:
        return [self._profile_relax(None).scaled(self.sweeps)]

    def trace_spec(self) -> trace_mod.TraceSpec:
        adjacency = (self.n + 1) * 4 + self._edge_estimate() * 4
        values = self.n * 4
        return trace_mod.TraceSpec.single(
            trace_mod.seq(adjacency, passes=1, budget=("floordiv", 2)),
            trace_mod.random_component(values, seed_offset=7, offset=adjacency,
                                       budget=("floordiv", 2)),
        )
