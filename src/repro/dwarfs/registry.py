"""Benchmark registry: name -> class, plus Table 2/3 aggregation."""

from __future__ import annotations

from .base import Benchmark, SIZES
from .bfs import BFS
from .crc import CRC
from .csr import CSR
from .cwt import CWT
from .dwt import DWT
from .fft import FFT
from .fsm import FSM
from .gem import GEM
from .hmm import HMM
from .kmeans import KMeans
from .lud import LUD
from .nqueens import NQueens
from .nw import NW
from .srad import SRAD
from .umesh import UMesh

#: All benchmarks in the paper's Table 2 row order.
BENCHMARKS: dict[str, type[Benchmark]] = {
    cls.name: cls
    for cls in (KMeans, LUD, CSR, FFT, DWT, SRAD, CRC, NW, GEM, NQueens, HMM)
}

#: Benchmarks added beyond the paper's evaluated set — its announced
#: roadmap (cwt, §2) and the Berkeley dwarfs it leaves uncovered
#: (Graph Traversal, Finite State Machine, Unstructured Grid; §2 aims
#: for "a full representation of each dwarf").  Usable everywhere, but
#: excluded from the Table 2/3 regeneration so the reproduced tables
#: stay faithful.
EXTENSIONS: dict[str, type[Benchmark]] = {
    cls.name: cls for cls in (CWT, BFS, FSM, UMesh)
}


def get_benchmark(name: str) -> type[Benchmark]:
    """Look up a benchmark class by name (paper set, then extensions)."""
    key = name.lower()
    if key in BENCHMARKS:
        return BENCHMARKS[key]
    if key in EXTENSIONS:
        return EXTENSIONS[key]
    known = ", ".join([*BENCHMARKS, *EXTENSIONS])
    raise KeyError(f"unknown benchmark {name!r}; known: {known}")


def create(name: str, size: str, **overrides) -> Benchmark:
    """Instantiate a benchmark at a Table 2 problem size."""
    return get_benchmark(name).from_size(size, **overrides)


def scale_parameters_table() -> dict[str, dict[str, str]]:
    """Reproduce Table 2: scale parameter Φ per benchmark and size."""
    table = {}
    for name, cls in BENCHMARKS.items():
        row = {}
        for size in SIZES:
            phi = cls.presets.get(size)
            if phi is None:
                row[size] = "–"
            elif isinstance(phi, tuple):
                sep = "x" if name == "dwt" else ","
                row[size] = sep.join(str(v) for v in phi)
            else:
                row[size] = str(phi)
        table[name] = row
    return table


def program_arguments_table() -> dict[str, str]:
    """Reproduce Table 3: the argument template per benchmark."""
    return {name: cls.args_template for name, cls in BENCHMARKS.items()}
