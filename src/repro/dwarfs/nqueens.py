"""nqueens — the Backtrack & Branch-and-Bound dwarf.

Counts the placements of N non-attacking queens with the classic
bitmask depth-first search.  As the paper notes, "memory footprint
scales very slowly with increasing number of queens, relative to the
computational cost.  Thus it is significantly compute-bound and only
one problem size is tested" (§4.4.4) — the paper evaluates N=18.

Parallel structure (as in the OpenCL code): the first ``PREFIX_DEPTH``
rows are expanded on the host into independent sub-problems, and one
work item counts each sub-problem's subtree.

**Exactness substitution** (documented in DESIGN.md): enumerating N=18
exactly (5.9e10 search nodes) is infeasible in pure Python, so
functional execution is exact up to :data:`MAX_EXACT_N` and switches
to the *Knuth tree-size estimator* beyond — each work item performs
random rooted descents and the solution count is estimated by
importance weighting (mean over walks of the product of branching
factors).  This runs the identical branch-and-bound step (free-square
bitmask computation) on a sampled schedule and is statistically
unbiased; ``exact`` is False for estimates.  The *performance profile*
always reflects the full search-tree size via the known node-count
table, so modeled timings are those of the complete enumeration.
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError)

#: Known solution counts (OEIS A000170), indexed by board size.
KNOWN_SOLUTIONS = {
    1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724,
    11: 2680, 12: 14200, 13: 73712, 14: 365596, 15: 2279184, 16: 14772512,
    17: 95815104, 18: 666090624,
}

#: Approximate search-tree node counts (placements explored by the
#: bitmask DFS); used by the performance model.
KNOWN_NODES = {
    4: 16, 5: 53, 6: 152, 7: 551, 8: 2056, 9: 8393, 10: 35538,
    11: 166925, 12: 856188, 13: 4674889, 14: 27358552, 15: 171129071,
    16: 1141190302, 17: 8017021931, 18: 59365844128,
}

#: Largest board enumerated exactly in pure Python.
MAX_EXACT_N = 13

#: Host-side expansion depth producing the parallel sub-problems.
PREFIX_DEPTH = 2

#: Random descents per work item in estimator mode.
WALKS_PER_ITEM = 400

#: Work items in estimator mode.
ESTIMATOR_ITEMS = 64


def solve_subproblem(n: int, cols: int, diag_l: int, diag_r: int, row: int) -> int:
    """Count completions of a partial placement (bitmask DFS)."""
    if row == n:
        return 1
    count = 0
    full = (1 << n) - 1
    free = full & ~(cols | diag_l | diag_r)
    while free:
        bit = free & -free
        free ^= bit
        count += solve_subproblem(
            n, cols | bit, ((diag_l | bit) << 1) & full, (diag_r | bit) >> 1, row + 1
        )
    return count


def expand_prefixes(n: int, depth: int) -> list[tuple[int, int, int]]:
    """All valid (cols, diag_l, diag_r) states after ``depth`` rows."""
    full = (1 << n) - 1
    states = [(0, 0, 0)]
    for _ in range(depth):
        nxt = []
        for cols, dl, dr in states:
            free = full & ~(cols | dl | dr)
            while free:
                bit = free & -free
                free ^= bit
                nxt.append((cols | bit, ((dl | bit) << 1) & full, (dr | bit) >> 1))
        states = nxt
    return states


def knuth_walk(n: int, rng: np.random.Generator) -> int:
    """One random descent; returns the importance-weighted estimate.

    The estimate is the product of the branching factors along the
    walk if it reaches a full placement, else 0.  Its expectation over
    walks is exactly the number of solutions (Knuth 1975).
    """
    full = (1 << n) - 1
    cols = dl = dr = 0
    weight = 1
    for _ in range(n):
        free = full & ~(cols | dl | dr)
        k = free.bit_count()
        if k == 0:
            return 0
        weight *= k
        choice = int(rng.integers(k))
        bit = free
        for _ in range(choice):
            bit &= bit - 1
        bit &= -bit
        cols |= bit
        dl = ((dl | bit) << 1) & full
        dr = (dr | bit) >> 1
    return weight


def _nqueens_exact_kernel(nd, n, prefix_cols, prefix_dl, prefix_dr, counts):
    """One work item per sub-problem: exhaustive subtree count."""
    n = int(n)
    for idx in range(len(prefix_cols)):
        counts[idx] = solve_subproblem(
            n, int(prefix_cols[idx]), int(prefix_dl[idx]), int(prefix_dr[idx]),
            PREFIX_DEPTH,
        )


def _nqueens_estimate_kernel(nd, n, seeds, estimates):
    """One work item per seed: mean of ``WALKS_PER_ITEM`` Knuth walks."""
    n = int(n)
    for idx in range(len(seeds)):
        rng = np.random.default_rng(int(seeds[idx]))
        total = 0
        for _ in range(WALKS_PER_ITEM):
            total += knuth_walk(n, rng)
        estimates[idx] = total / WALKS_PER_ITEM


class NQueens(Benchmark):
    """Backtrack & Branch-and-Bound dwarf: N-queens counting."""

    name = "nqueens"
    dwarf = "Backtrack & Branch and Bound"
    presets = {"tiny": 18}  # single problem size, as in the paper
    args_template = "{phi}"

    def __init__(self, n: int = 18, seed: int = 23):
        super().__init__()
        if not 1 <= n <= 31:
            raise ValueError(f"board size must be in [1, 31], got {n}")
        self.n = int(n)
        self.seed = seed
        self.exact = self.n <= MAX_EXACT_N
        self.solutions: int | None = None
        self.estimate_rel_stderr: float | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "NQueens":
        return cls(n=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "NQueens":
        if len(argv) != 1:
            raise ValueError(f"nqueens: expected board size, got {argv!r}")
        return cls(n=int(argv[0]), **overrides)

    # ------------------------------------------------------------------
    def _subproblem_count(self) -> int:
        if self.exact:
            return len(expand_prefixes(self.n, min(PREFIX_DEPTH, self.n)))
        return ESTIMATOR_ITEMS

    def footprint_bytes(self) -> int:
        """Device arrays per mode: prefix states + counters (exact) or
        seeds + estimates (estimator)."""
        k = self._subproblem_count()
        if self.exact:
            return k * (3 * 4 + 8)   # 3 int32 prefix words + int64 count
        return k * (8 + 8)           # int64 seed + float64 estimate

    def static_launches(self) -> StaticLaunchModel:
        k = self._subproblem_count()
        if self.exact:
            return StaticLaunchModel(
                source=kernels_cl.NQUEENS_CL,
                macros={"PREFIX_DEPTH": PREFIX_DEPTH},
                buffers={
                    "cols": StaticBuffer("cols", k * 4),
                    "dl": StaticBuffer("dl", k * 4),
                    "dr": StaticBuffer("dr", k * 4),
                    "counts": StaticBuffer("counts", k * 8),
                },
                launches=(
                    StaticLaunch(
                        "nqueens_count", (k,),
                        scalars={"n": self.n},
                        buffers={"prefix_cols": ("cols", 0),
                                 "prefix_dl": ("dl", 0),
                                 "prefix_dr": ("dr", 0),
                                 "counts": ("counts", 0)},
                    ),
                ),
            )
        return StaticLaunchModel(
            source=kernels_cl.NQUEENS_CL,
            macros={"WALKS_PER_ITEM": WALKS_PER_ITEM},
            buffers={
                "seeds": StaticBuffer("seeds", k * 8),
                "estimates": StaticBuffer("estimates", k * 8),
            },
            launches=(
                StaticLaunch(
                    "nqueens_estimate", (k,),
                    scalars={"n": self.n},
                    buffers={"seeds": ("seeds", 0),
                             "estimates": ("estimates", 0)},
                ),
            ),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        if self.exact:
            prefixes = expand_prefixes(self.n, min(PREFIX_DEPTH, self.n))
            self.prefix_cols = np.array([p[0] for p in prefixes], dtype=np.int32)
            self.prefix_dl = np.array([p[1] for p in prefixes], dtype=np.int32)
            self.prefix_dr = np.array([p[2] for p in prefixes], dtype=np.int32)
            self.buf_cols = context.buffer_like(self.prefix_cols, MemFlags.READ_ONLY)
            self.buf_dl = context.buffer_like(self.prefix_dl, MemFlags.READ_ONLY)
            self.buf_dr = context.buffer_like(self.prefix_dr, MemFlags.READ_ONLY)
            self.buf_out = context.buffer_like(
                np.zeros(len(prefixes), dtype=np.int64)
            )
            program = Program(context, [
                KernelSource("nqueens_count", _nqueens_exact_kernel,
                             self._profile_nqueens,
                             cl_source=kernels_cl.NQUEENS_CL),
            ]).build()
            self.kernel = program.create_kernel("nqueens_count").set_args(
                self.n, self.buf_cols, self.buf_dl, self.buf_dr, self.buf_out
            )
            self._n_items = len(prefixes)
        else:
            seeds = np.arange(ESTIMATOR_ITEMS, dtype=np.int64) + self.seed * 1000
            self.seeds = seeds
            self.buf_seeds = context.buffer_like(seeds, MemFlags.READ_ONLY)
            self.buf_out = context.buffer_like(
                np.zeros(ESTIMATOR_ITEMS, dtype=np.float64)
            )
            program = Program(context, [
                KernelSource("nqueens_estimate", _nqueens_estimate_kernel,
                             self._profile_nqueens,
                             cl_source=kernels_cl.NQUEENS_CL),
            ]).build()
            self.kernel = program.create_kernel("nqueens_estimate").set_args(
                self.n, self.buf_seeds, self.buf_out
            )
            self._n_items = ESTIMATOR_ITEMS
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        if self.exact:
            return [
                queue.enqueue_write_buffer(self.buf_cols, self.prefix_cols),
                queue.enqueue_write_buffer(self.buf_dl, self.prefix_dl),
                queue.enqueue_write_buffer(self.buf_dr, self.prefix_dr),
            ]
        return [queue.enqueue_write_buffer(self.buf_seeds, self.seeds)]

    def run_iteration(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_nd_range_kernel(self.kernel, (self._n_items,))]

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        out = np.empty(self._n_items, dtype=self.buf_out.array.dtype)
        events = [queue.enqueue_read_buffer(self.buf_out, out)]
        if self.exact:
            self.solutions = int(out.sum())
            self.estimate_rel_stderr = 0.0
        else:
            mean = float(out.mean())
            stderr = float(out.std(ddof=1) / np.sqrt(len(out))) if len(out) > 1 else 0.0
            self.solutions = int(round(mean))
            self.estimate_rel_stderr = stderr / mean if mean else float("inf")
        return events

    def validate(self) -> None:
        if self.solutions is None:
            raise ValidationError("nqueens: results were never collected")
        expected = KNOWN_SOLUTIONS.get(self.n)
        if expected is None:
            return  # no published count to compare against
        if self.exact:
            if self.solutions != expected:
                raise ValidationError(
                    f"nqueens: counted {self.solutions}, known {expected}"
                )
        else:
            rel = abs(self.solutions - expected) / expected
            # the estimator's own standard error bounds the tolerance
            limit = max(4 * (self.estimate_rel_stderr or 0.0), 0.25)
            if rel > limit:
                raise ValidationError(
                    f"nqueens: estimate {self.solutions} off by {rel:.0%} "
                    f"from known {expected} (limit {limit:.0%})"
                )

    # ------------------------------------------------------------------
    def _profile_nqueens(self, nd, *args) -> KernelProfile:
        """Characterise the work the kernel actually performs.

        Exact mode explores the full search tree (node counts from the
        published table); estimator mode performs a fixed schedule of
        random descents.  OpenDwarfs's measured nqueens kernel likewise
        times a bounded search slice rather than full enumeration — its
        published Fig. 4b times for N=18 are in milliseconds, far below
        any full 5.9e10-node walk.
        """
        if self.exact:
            nodes = KNOWN_NODES.get(self.n)
            if nodes is None:
                nodes = 16 * 9.6 ** max(self.n - 4, 0)  # growth extrapolation
        else:
            nodes = float(ESTIMATOR_ITEMS * WALKS_PER_ITEM * self.n)
        subproblems = max(self.n * self.n - 3 * self.n + 2, 1)  # depth-2 prefixes
        if not self.exact:
            subproblems = ESTIMATOR_ITEMS
        return KernelProfile(
            name="nqueens_count",
            flops=0.0,
            int_ops=25.0 * nodes,           # mask ops, bit extraction, push/pop
            bytes_read=float(subproblems * 12),
            bytes_written=float(subproblems * 8),
            working_set_bytes=float(self.footprint_bytes()),
            work_items=subproblems,
            seq_fraction=1.0,
            branch_fraction=0.5,            # deeply data-dependent control flow
            serial_ops=50.0 * nodes / max(subproblems, 1),  # deepest subtree
        )

    def profiles(self) -> list[KernelProfile]:
        return [self._profile_nqueens(None)]

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Tiny working set hammered repeatedly: everything is L1-hot."""
        return trace_mod.TraceSpec.single(
            trace_mod.seq(max(self.footprint_bytes(), 64), passes=64))
