"""nw — the Dynamic Programming dwarf.

Needleman-Wunsch global sequence alignment over the BLOSUM62
substitution matrix with a linear gap penalty of 10 (Table 3:
``nw Φ 10``), structured exactly like the OpenCL original: the score
matrix is filled in BxB blocks processed anti-diagonal by
anti-diagonal, with **one kernel launch per block diagonal** — the
launch-count profile (2·N/B − 1 launches of short kernels) is what
ties this benchmark's performance "to micro-architecture or OpenCL
runtime support": AMD's higher per-launch cost makes its GPUs fall
behind as N grows, while Intel CPUs and NVIDIA GPUs stay comparable
(paper Fig. 3b).

Each kernel body processes all blocks of one diagonal by sweeping the
2B−1 intra-block cell diagonals with vectorised updates, which is the
same dependency schedule the OpenCL kernel realises with local-memory
tiles.  Validation compares against an independent full-matrix
anti-diagonal reference (and a pure-Python triple-loop for small N).
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError)

#: Block edge used by the OpenDwarfs kernels.
BLOCK = 16

#: Default gap penalty (Table 3).
GAP_PENALTY = 10

# BLOSUM62 over the standard 24-symbol alphabet
# (ARNDCQEGHILKMFPSTWYVBZX*), as shipped with OpenDwarfs/Rodinia.
BLOSUM62 = np.array([
    [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4],
    [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4],
    [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4],
    [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4],
    [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4],
    [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4],
    [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4],
    [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4],
    [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4],
    [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4],
    [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4],
    [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4],
    [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4],
    [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4],
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4],
    [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4],
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4],
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4],
    [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4],
    [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4],
    [-2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4],
    [-1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4],
    [ 0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4],
    [-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1],
], dtype=np.int32)

ALPHABET = 24


def _nw_diagonal_kernel(nd, score, similarity, n, block, diag, penalty):
    """Process every block on block-diagonal ``diag``.

    ``score`` is the (n+1)x(n+1) DP matrix; ``similarity`` the
    precomputed substitution scores for the cell pairs.  Within the
    diagonal, the 2B−1 intra-block cell diagonals are swept in order;
    all member blocks advance together, vectorised.
    """
    n, b, diag, penalty = int(n), int(block), int(diag), int(penalty)
    f = score.reshape(n + 1, n + 1)
    sim = similarity.reshape(n, n)
    nb = n // b
    lo = max(0, diag - nb + 1)
    hi = min(diag, nb - 1)
    blocks_i = np.arange(lo, hi + 1)
    blocks_j = diag - blocks_i
    for t in range(2 * b - 1):
        li = np.arange(max(0, t - b + 1), min(t, b - 1) + 1)
        lj = t - li
        # global cell indices: blocks x cells-in-diagonal, flattened
        i = (1 + blocks_i[:, None] * b + li[None, :]).ravel()
        j = (1 + blocks_j[:, None] * b + lj[None, :]).ravel()
        match = f[i - 1, j - 1] + sim[i - 1, j - 1]
        delete = f[i - 1, j] - penalty
        insert = f[i, j - 1] - penalty
        f[i, j] = np.maximum(match, np.maximum(delete, insert))


class NW(Benchmark):
    """Dynamic Programming dwarf: Needleman-Wunsch alignment."""

    name = "nw"
    dwarf = "Dynamic Programming"
    presets = {"tiny": 48, "small": 176, "medium": 1008, "large": 4096}
    args_template = "{phi} 10"

    def __init__(self, n: int, penalty: int = GAP_PENALTY, block: int = BLOCK,
                 seed: int = 11):
        super().__init__()
        if n < block or n % block:
            raise ValueError(f"sequence length {n} must be a multiple of {block}")
        self.n = int(n)
        self.penalty = int(penalty)
        self.block = int(block)
        self.seed = seed
        self.seq1: np.ndarray | None = None
        self.seq2: np.ndarray | None = None
        self.score_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "NW":
        return cls(n=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "NW":
        """Parse ``N penalty`` (Table 3)."""
        if len(argv) != 2:
            raise ValueError(f"nw: expected 'N penalty', got {argv!r}")
        return cls(n=int(argv[0]), penalty=int(argv[1]), **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Score matrix + similarity matrix (both (N+1)² / N² int32)."""
        return (self.n + 1) ** 2 * 4 + self.n * self.n * 4

    def static_launches(self) -> StaticLaunchModel:
        n, b = self.n, self.block
        nb = n // b
        launches: list[StaticLaunch] = []
        for diag in range(self.n_diagonals):
            blocks = min(diag, nb - 1) - max(0, diag - nb + 1) + 1
            launches.append(StaticLaunch(
                "nw_diagonal", (blocks * b,),
                scalars={"n": n, "block": b, "diag": diag,
                         "penalty": self.penalty},
                buffers={"score": ("score", 0),
                         "similarity": ("similarity", 0)},
                local_size=(b,)))
        return StaticLaunchModel(
            source=kernels_cl.NW_CL,
            buffers={
                "score": StaticBuffer("score", (n + 1) ** 2 * 4),
                "similarity": StaticBuffer("similarity", n * n * 4),
            },
            launches=tuple(launches),
        )

    @property
    def n_diagonals(self) -> int:
        """Kernel launches per iteration: 2·(N/B) − 1 block diagonals."""
        return 2 * (self.n // self.block) - 1

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        self.seq1 = rng.integers(0, 20, size=self.n, dtype=np.int32)  # residues
        self.seq2 = rng.integers(0, 20, size=self.n, dtype=np.int32)
        self.similarity = BLOSUM62[self.seq1[:, None], self.seq2[None, :]].astype(np.int32)

        score = np.zeros((self.n + 1, self.n + 1), dtype=np.int32)
        score[0, :] = -self.penalty * np.arange(self.n + 1)
        score[:, 0] = -self.penalty * np.arange(self.n + 1)
        self.initial_score = score

        self.buf_score = context.buffer_like(score)
        self.buf_similarity = context.buffer_like(self.similarity, MemFlags.READ_ONLY)
        program = Program(context, [
            KernelSource("nw_diagonal", _nw_diagonal_kernel, self._profile_diagonal,
                         cl_source=kernels_cl.NW_CL),
        ]).build()
        self.kernel = program.create_kernel("nw_diagonal")
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [
            queue.enqueue_write_buffer(self.buf_score, self.initial_score),
            queue.enqueue_write_buffer(self.buf_similarity, self.similarity),
        ]

    def run_iteration(self, queue) -> list[Event]:
        """One full alignment: a kernel launch per block diagonal."""
        self._require_setup()
        queue.enqueue_write_buffer(self.buf_score, self.initial_score)
        events = []
        nb = self.n // self.block
        for diag in range(self.n_diagonals):
            blocks = min(diag, nb - 1) - max(0, diag - nb + 1) + 1
            self.kernel.set_args(
                self.buf_score, self.buf_similarity,
                self.n, self.block, diag, self.penalty,
            )
            events.append(
                queue.enqueue_nd_range_kernel(self.kernel, (blocks * self.block,))
            )
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.score_out = np.empty_like(self.initial_score)
        return [queue.enqueue_read_buffer(self.buf_score, self.score_out)]

    # ------------------------------------------------------------------
    def _reference_antidiagonal(self) -> np.ndarray:
        """Independent reference: cell-level anti-diagonal sweep."""
        n, penalty = self.n, self.penalty
        f = self.initial_score.astype(np.int64).copy()
        sim = self.similarity.astype(np.int64)
        for d in range(2, 2 * n + 1):
            i = np.arange(max(1, d - n), min(d - 1, n) + 1)
            j = d - i
            match = f[i - 1, j - 1] + sim[i - 1, j - 1]
            delete = f[i - 1, j] - penalty
            insert = f[i, j - 1] - penalty
            f[i, j] = np.maximum(match, np.maximum(delete, insert))
        return f

    def reference_serial(self) -> np.ndarray:
        """Pure-Python triple-loop DP (for small N; tests only)."""
        n, penalty = self.n, self.penalty
        f = self.initial_score.astype(int).tolist()
        sim = self.similarity.tolist()
        for i in range(1, n + 1):
            for j in range(1, n + 1):
                f[i][j] = max(
                    f[i - 1][j - 1] + sim[i - 1][j - 1],
                    f[i - 1][j] - penalty,
                    f[i][j - 1] - penalty,
                )
        return np.asarray(f, dtype=np.int64)

    def validate(self) -> None:
        if self.score_out is None:
            raise ValidationError("nw: results were never collected")
        expected = self._reference_antidiagonal()
        if not np.array_equal(self.score_out.astype(np.int64), expected):
            bad = int((self.score_out != expected).sum())
            raise ValidationError(
                f"nw: {bad} score cells disagree with the reference "
                f"(corner {self.score_out[-1, -1]} vs {expected[-1, -1]})"
            )

    def alignment_score(self) -> int:
        """The global alignment score (bottom-right DP cell)."""
        if self.score_out is None:
            raise ValidationError("nw: results were never collected")
        return int(self.score_out[-1, -1])

    # ------------------------------------------------------------------
    def _profile_diagonal(self, nd, score, similarity, n, block, diag, penalty
                          ) -> KernelProfile:
        n, b, diag = int(n), int(block), int(diag)
        nb = n // b
        blocks = min(diag, nb - 1) - max(0, diag - nb + 1) + 1
        cells = blocks * b * b
        return KernelProfile(
            name="nw_diagonal",
            flops=0.0,
            int_ops=10.0 * cells,           # 3 adds, 2 max, index arithmetic
            bytes_read=cells * 16.0,        # 3 neighbours + similarity
            bytes_written=cells * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=max(blocks * b, 1),
            seq_fraction=0.4,
            strided_fraction=0.6,           # row-above accesses stride by N
            branch_fraction=0.2,
            serial_ops=(2.0 * b - 1) * 4.0,  # intra-block diagonal chain
        )

    def profiles(self) -> list[KernelProfile]:
        """All block diagonals aggregated into one launch-heavy profile.

        Quantities are per launch (average diagonal); ``launches``
        restores the totals.
        """
        total_cells = float(self.n * self.n)
        launches = self.n_diagonals
        cells_per_launch = total_cells / launches
        avg_blocks = max(cells_per_launch / (self.block * self.block), 1.0)
        return [KernelProfile(
            name="nw_diagonal",
            flops=0.0,
            int_ops=10.0 * cells_per_launch,
            bytes_read=cells_per_launch * 16.0,
            bytes_written=cells_per_launch * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=max(int(avg_blocks * self.block), 1),
            seq_fraction=0.4,
            strided_fraction=0.6,
            branch_fraction=0.2,
            serial_ops=(2.0 * self.block - 1) * 4.0,
            launches=launches,
        )]

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Blocked traversal of the score matrix plus similarity stream."""
        score_bytes = (self.n + 1) ** 2 * 4
        sim_bytes = self.n * self.n * 4
        return trace_mod.TraceSpec.single(
            trace_mod.blocked_component(score_bytes,
                                        self.block * (self.n + 1) * 4,
                                        reuse=2, budget=("floordiv", 2)),
            trace_mod.seq(sim_bytes, passes=1, offset=score_bytes,
                          budget=("floordiv", 2)),
        )
