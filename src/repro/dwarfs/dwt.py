"""dwt — the second Spectral Methods benchmark.

Two-dimensional multi-level discrete wavelet transform, the benchmark
the paper added from Rodinia "with modifications to improve
portability" (§2).  We implement the CDF 5/3 (LeGall) wavelet by
lifting — the JPEG 2000 lossless filter — with symmetric boundary
extension, which handles the odd image dimensions of the paper's
problem sizes (e.g. 72x54 halves to 36x27).

Each decomposition level launches two kernels, ``dwt_rows`` and
``dwt_cols``; coefficients are stored in the tiled subband layout
(LL in the top-left quadrant, then HL/LH/HH) that the benchmark's
"visual tiled fashion" PGM output displays (§4.4.3).  Validation
reconstructs the image through the inverse lifting and demands exact
agreement to floating-point tolerance.

Input is the synthetic gum-leaf image of :mod:`repro.io.images`.
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..io import images, ppm
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)

#: Decomposition levels from the Table 3 arguments (``-l 3``).
LEVELS = 3


def lift53_forward(x: np.ndarray, axis: int) -> np.ndarray:
    """CDF 5/3 forward lifting along ``axis`` with symmetric extension.

    Returns the transformed array with low-pass coefficients packed
    first, then high-pass (subband layout).  Works for odd lengths:
    ``ceil(n/2)`` low-pass and ``floor(n/2)`` high-pass samples.
    """
    x = np.moveaxis(x, axis, 0).astype(np.float32, copy=True)
    n = x.shape[0]
    if n < 2:
        return np.moveaxis(x, 0, axis)
    even = x[0::2].copy()   # n_low  = ceil(n/2)
    odd = x[1::2].copy()    # n_high = floor(n/2)
    n_high = odd.shape[0]
    # predict: d[i] -= (s[i] + s[i+1]) / 2, mirroring at the right edge
    right = even[1 : n_high + 1] if n % 2 == 1 else np.concatenate(
        [even[1:], even[-1:]], axis=0
    )
    odd -= (even[:n_high] + right) / 2.0
    # update: s[i] += (d[i-1] + d[i]) / 4, mirroring at both edges
    d_left = np.concatenate([odd[:1], odd[:-1]], axis=0)
    if n % 2 == 1:
        d_pairs = np.concatenate([odd, odd[-1:]], axis=0)
        d_left = np.concatenate([odd[:1], odd], axis=0)
        even += (d_left + d_pairs) / 4.0
    else:
        even += (d_left + odd) / 4.0
    out = np.concatenate([even, odd], axis=0)
    return np.moveaxis(out, 0, axis)


def lift53_inverse(x: np.ndarray, axis: int) -> np.ndarray:
    """Inverse CDF 5/3 lifting along ``axis`` (exact inverse)."""
    x = np.moveaxis(x, axis, 0).astype(np.float32, copy=True)
    n = x.shape[0]
    if n < 2:
        return np.moveaxis(x, 0, axis)
    n_low = (n + 1) // 2
    even = x[:n_low].copy()
    odd = x[n_low:].copy()
    n_high = odd.shape[0]
    # undo update
    if n % 2 == 1:
        d_pairs = np.concatenate([odd, odd[-1:]], axis=0)
        d_left = np.concatenate([odd[:1], odd], axis=0)
        even -= (d_left + d_pairs) / 4.0
    else:
        d_left = np.concatenate([odd[:1], odd[:-1]], axis=0)
        even -= (d_left + odd) / 4.0
    # undo predict
    right = even[1 : n_high + 1] if n % 2 == 1 else np.concatenate(
        [even[1:], even[-1:]], axis=0
    )
    odd += (even[:n_high] + right) / 2.0
    out = np.empty_like(x)
    out[0::2] = even
    out[1::2] = odd
    return np.moveaxis(out, 0, axis)


def _dwt_rows_kernel(nd, image, h, w):
    """Row-direction lifting on the active LL region."""
    h, w = int(h), int(w)
    region = image[:h, :w]
    region[...] = lift53_forward(region, axis=1)


def _dwt_cols_kernel(nd, image, h, w):
    """Column-direction lifting on the active LL region."""
    h, w = int(h), int(w)
    region = image[:h, :w]
    region[...] = lift53_forward(region, axis=0)


class DWT(Benchmark):
    """Spectral Methods dwarf: 2-D discrete wavelet transform."""

    name = "dwt"
    dwarf = "Spectral Methods"
    presets = {
        "tiny": (72, 54),
        "small": (200, 150),
        "medium": (1152, 864),
        "large": (3648, 2736),
    }
    args_template = "-l 3 {phi1}x{phi2}-gum.ppm"

    def __init__(self, width: int, height: int, levels: int = LEVELS, seed: int = 2018):
        super().__init__()
        if width < 2 ** levels or height < 2 ** levels:
            raise ValueError(
                f"{width}x{height} image too small for {levels} levels"
            )
        self.width = int(width)
        self.height = int(height)
        self.levels = int(levels)
        self.seed = seed
        self.image: np.ndarray | None = None
        self.coefficients_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "DWT":
        width, height = phi
        return cls(width=width, height=height, **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "DWT":
        """Parse ``-l L WxH-gum.ppm`` (Table 3)."""
        levels = LEVELS
        size = None
        i = 0
        while i < len(argv):
            if argv[i] == "-l":
                levels = int(argv[i + 1]); i += 2
            else:
                stem = argv[i].split("-")[0]
                w, h = stem.split("x")
                size = (int(w), int(h))
                i += 1
        if size is None:
            raise ValueError("dwt: image size argument required")
        return cls(width=size[0], height=size[1], levels=levels, **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """One float32 working image plus the uint8 source raster."""
        return self.width * self.height * 4 + self.width * self.height

    def static_launches(self) -> StaticLaunchModel:
        launches: list[StaticLaunch] = []
        for h, w in self._level_shapes():
            for kernel in ("dwt_rows", "dwt_cols"):
                launches.append(StaticLaunch(
                    kernel, (h * w,),
                    scalars={"h": h, "w": w},
                    buffers={"image": ("image", 0)}))
        return StaticLaunchModel(
            source=kernels_cl.DWT_CL,
            buffers={
                "image": StaticBuffer("image", self.width * self.height * 4),
                "raster": StaticBuffer(
                    "raster", self.width * self.height, kernel_bound=False),
            },
            launches=tuple(launches),
        )

    def _level_shapes(self) -> list[tuple[int, int]]:
        """Active (h, w) region per decomposition level."""
        shapes = []
        h, w = self.height, self.width
        for _ in range(self.levels):
            shapes.append((h, w))
            h, w = (h + 1) // 2, (w + 1) // 2
        return shapes

    def host_setup(self, context: Context) -> None:
        self.context = context
        raster = images.gum_leaf_at_scale(self.width, self.height, seed=self.seed)
        self.image = raster.astype(np.float32)
        self.raster = raster

        self.buf_image = context.buffer_like(self.image)
        self.buf_raster = context.buffer_like(raster, MemFlags.READ_ONLY)
        program = Program(context, [
            KernelSource("dwt_rows", _dwt_rows_kernel, self._profile_pass,
                         cl_source=kernels_cl.DWT_CL),
            KernelSource("dwt_cols", _dwt_cols_kernel, self._profile_pass,
                         cl_source=kernels_cl.DWT_CL),
        ]).build()
        self.kernels = program.all_kernels()
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_write_buffer(self.buf_image, self.image)]

    def run_iteration(self, queue) -> list[Event]:
        """One multi-level forward transform (2 kernels per level)."""
        self._require_setup()
        queue.enqueue_write_buffer(self.buf_image, self.image)
        events = []
        for h, w in self._level_shapes():
            # pixel-parallel NDRanges, as in the Rodinia kernels
            rows = self.kernels["dwt_rows"].set_args(self.buf_image, h, w)
            events.append(queue.enqueue_nd_range_kernel(rows, (h * w,)))
            cols = self.kernels["dwt_cols"].set_args(self.buf_image, h, w)
            events.append(queue.enqueue_nd_range_kernel(cols, (h * w,)))
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.coefficients_out = np.empty_like(self.image)
        return [queue.enqueue_read_buffer(self.buf_image, self.coefficients_out)]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Invert the transform and demand the original image back."""
        if self.coefficients_out is None:
            raise ValidationError("dwt: results were never collected")
        recon = self.coefficients_out.copy()
        for h, w in reversed(self._level_shapes()):
            region = recon[:h, :w]
            region[...] = lift53_inverse(region, axis=0)
            region[...] = lift53_inverse(region, axis=1)
        assert_close(recon, self.image, 1e-4, "dwt: perfect reconstruction")

    def coefficients_pgm(self) -> bytes:
        """The coefficient plane as a tiled PGM (the benchmark's output)."""
        if self.coefficients_out is None:
            raise ValidationError("dwt: results were never collected")
        c = self.coefficients_out
        lo, hi = float(c.min()), float(c.max())
        scale = 255.0 / (hi - lo) if hi > lo else 1.0
        return ppm.dumps(((c - lo) * scale).astype(np.uint8))

    # ------------------------------------------------------------------
    def _profile_pass(self, nd, image, h, w) -> KernelProfile:
        h, w = int(h), int(w)
        pixels = h * w
        return KernelProfile(
            name="dwt_pass",
            flops=6.0 * pixels,             # 2 lifting steps x ~3 flops
            int_ops=3.0 * pixels,
            bytes_read=pixels * 4.0,
            bytes_written=pixels * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=max(nd.work_items if nd is not None else max(h, w), 1),
            seq_fraction=0.5,
            strided_fraction=0.5,           # the column pass strides by W
        )

    def profiles(self) -> list[KernelProfile]:
        out = []
        for h, w in self._level_shapes():
            pixels = h * w
            for name in ("dwt_rows", "dwt_cols"):
                out.append(KernelProfile(
                    name=name,
                    flops=6.0 * pixels,
                    int_ops=3.0 * pixels,
                    bytes_read=pixels * 4.0,
                    bytes_written=pixels * 4.0,
                    working_set_bytes=float(self.footprint_bytes()),
                    work_items=max(pixels, 1),
                    seq_fraction=0.5 if name == "dwt_rows" else 0.1,
                    strided_fraction=0.5 if name == "dwt_rows" else 0.9,
                ))
        return out

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Row-sequential pass interleaved with a column-strided pass."""
        nbytes = self.width * self.height * 4
        return trace_mod.TraceSpec.single(
            trace_mod.seq(nbytes, passes=1, budget=("floordiv", 2)),
            trace_mod.strided_component(nbytes, self.width * 4,
                                        passes=max(self.height // 64, 1),
                                        budget=("floordiv", 2)),
        )
