"""kmeans — the MapReduce dwarf.

Iterative clustering of ``n_points`` points with ``n_features``
features into 5 clusters (fixed, paper §4.4.1).  The device kernel
assigns each point to its nearest centroid; the host relocates each
centroid to the mean of its members, as in the OpenDwarfs original.

Following the paper's enhancement, input features are *generated* as a
random distribution (the ``-g`` flag) rather than loaded from a file,
"to more fairly evaluate cache performance".

Working-set formula (paper Eq. 1)::

    size(feature) + size(membership) + size(cluster)
      = Pn*Fn*4    + Pn*4             + Cn*Fn*4      bytes

With 30 features, the tiny size of 256 points gives 31.5 KiB — just
inside the Skylake's 32 KiB L1 — exactly the paper's worked example.
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)

#: Fixed cluster count for all problem sizes (paper §4.4.1).
N_CLUSTERS = 5

#: Default feature count from the Table 3 arguments (``-f 26``).
N_FEATURES = 26


def footprint_formula(n_points: int, n_features: int, n_clusters: int = N_CLUSTERS) -> int:
    """Equation 1 of the paper, in bytes."""
    feature = n_points * n_features * 4
    membership = n_points * 4
    cluster = n_clusters * n_features * 4
    return feature + membership + cluster


def _assign_kernel(nd, features, clusters, membership):
    """Nearest-centroid assignment, vectorised over points.

    Looping over the (few) clusters keeps the temporary at O(P) rather
    than O(P*C*F).
    """
    n_points = features.shape[0]
    best = np.full(n_points, np.inf, dtype=np.float32)
    for c in range(clusters.shape[0]):
        dist = ((features - clusters[c]) ** 2).sum(axis=1)
        closer = dist < best
        membership[closer] = c
        best[closer] = dist[closer]


class KMeans(Benchmark):
    """MapReduce dwarf: k-means clustering."""

    name = "kmeans"
    dwarf = "MapReduce"
    presets = {"tiny": 256, "small": 2048, "medium": 65600, "large": 131072}
    args_template = "-g -f 26 -p {phi}"

    def __init__(self, n_points: int, n_features: int = N_FEATURES,
                 n_clusters: int = N_CLUSTERS, seed: int = 42):
        super().__init__()
        if n_points < n_clusters:
            raise ValueError(
                f"need at least {n_clusters} points, got {n_points}"
            )
        self.n_points = int(n_points)
        self.n_features = int(n_features)
        self.n_clusters = int(n_clusters)
        self.seed = seed
        self.features: np.ndarray | None = None
        self.initial_clusters: np.ndarray | None = None
        self.membership_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "KMeans":
        return cls(n_points=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "KMeans":
        """Parse the Table 3 argument form ``-g -f F -p P``."""
        features, points = N_FEATURES, None
        i = 0
        while i < len(argv):
            a = argv[i]
            if a == "-g":
                i += 1
            elif a == "-f":
                features = int(argv[i + 1]); i += 2
            elif a == "-p":
                points = int(argv[i + 1]); i += 2
            else:
                raise ValueError(f"kmeans: unknown argument {a!r}")
        if points is None:
            raise ValueError("kmeans: -p <points> is required")
        return cls(n_points=points, n_features=features, **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        return footprint_formula(self.n_points, self.n_features, self.n_clusters)

    def static_launches(self) -> StaticLaunchModel:
        p, f, c = self.n_points, self.n_features, self.n_clusters
        return StaticLaunchModel(
            source=kernels_cl.KMEANS_CL,
            macros={"N_FEATURES": f, "N_CLUSTERS": c},
            buffers={
                "features": StaticBuffer("features", p * f * 4),
                "clusters": StaticBuffer("clusters", c * f * 4),
                "membership": StaticBuffer("membership", p * 4),
            },
            launches=(
                StaticLaunch(
                    "kmeans_assign", (p,),
                    buffers={"features": ("features", 0),
                             "clusters": ("clusters", 0),
                             "membership": ("membership", 0)},
                ),
            ),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        self.features = rng.uniform(0.0, 1.0,
                                    size=(self.n_points, self.n_features)).astype(np.float32)
        # Starting centroids are distinct randomly-chosen input points
        # ("starting positions for the centroids are determined randomly").
        start = rng.choice(self.n_points, size=self.n_clusters, replace=False)
        self.initial_clusters = self.features[start].copy()

        self.buf_features = context.buffer_like(self.features, MemFlags.READ_ONLY)
        self.buf_clusters = context.buffer_like(self.initial_clusters)
        self.buf_membership = context.buffer_like(
            np.zeros(self.n_points, dtype=np.int32)
        )
        program = Program(context, [
            KernelSource("kmeans_assign", _assign_kernel, self._profile_assign,
                         cl_source=kernels_cl.KMEANS_CL),
        ]).build()
        self.kernel = program.create_kernel("kmeans_assign").set_args(
            self.buf_features, self.buf_clusters, self.buf_membership
        )
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [
            queue.enqueue_write_buffer(self.buf_features, self.features),
            queue.enqueue_write_buffer(self.buf_clusters, self.initial_clusters),
        ]

    def run_iteration(self, queue) -> list[Event]:
        """One k-means sweep: device assignment + host centroid update."""
        self._require_setup()
        # remember the centroids the kernel assigned against, so
        # validation can check the assignment even though the host
        # update below moves the centroids afterwards
        self._assignment_clusters = self.buf_clusters.array.copy()
        event = queue.enqueue_nd_range_kernel(self.kernel, (self.n_points,))
        self._update_centroids_host()
        return [event]

    def _update_centroids_host(self) -> None:
        membership = self.buf_membership.array
        features = self.buf_features.array
        clusters = self.buf_clusters.array
        for c in range(self.n_clusters):
            members = features[membership == c]
            if len(members):
                clusters[c] = members.mean(axis=0)

    def run_to_convergence(self, queue, max_sweeps: int = 500) -> int:
        """Sweep until membership stops changing; returns sweep count."""
        self._require_setup()
        previous = None
        for sweep in range(1, max_sweeps + 1):
            self.run_iteration(queue)
            current = self.buf_membership.array.copy()
            if previous is not None and np.array_equal(current, previous):
                return sweep
            previous = current
        return max_sweeps

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.membership_out = np.empty(self.n_points, dtype=np.int32)
        self.clusters_out = np.empty_like(self.initial_clusters)
        return [
            queue.enqueue_read_buffer(self.buf_membership, self.membership_out),
            queue.enqueue_read_buffer(self.buf_clusters, self.clusters_out),
        ]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the device assignment against a float64 serial sweep.

        The reference recomputes the *last* assignment from the final
        centroids with an independent full-distance-matrix code path.
        """
        if self.membership_out is None:
            raise ValidationError("kmeans: results were never collected")
        f = self.buf_features.array.astype(np.float64)
        c = getattr(self, "_assignment_clusters", self.clusters_out).astype(np.float64)
        dist = ((f[:, None, :] - c[None, :, :]) ** 2).sum(axis=2)
        expected = dist.argmin(axis=1).astype(np.int32)
        # Ties can legitimately differ between argmin orders; demand the
        # chosen cluster achieve the minimum distance instead of equality.
        chosen = dist[np.arange(self.n_points), self.membership_out]
        best = dist.min(axis=1)
        if not np.allclose(chosen, best, rtol=1e-5, atol=1e-9):
            bad = int((~np.isclose(chosen, best, rtol=1e-5, atol=1e-9)).sum())
            raise ValidationError(
                f"kmeans: {bad}/{self.n_points} points assigned to a "
                "non-nearest centroid"
            )
        del expected  # the membership array itself may differ only on ties

    def inertia(self) -> float:
        """Sum of squared distances to assigned centroids (fit quality)."""
        self._require_setup()
        f = self.buf_features.array.astype(np.float64)
        c = self.buf_clusters.array.astype(np.float64)
        m = self.buf_membership.array
        return float(((f - c[m]) ** 2).sum())

    # ------------------------------------------------------------------
    def _profile_assign(self, nd, features, clusters, membership) -> KernelProfile:
        p, f = features.shape
        c = clusters.shape[0]
        return KernelProfile(
            name="kmeans_assign",
            flops=3.0 * p * c * f,          # sub, mul, add per feature per cluster
            int_ops=2.0 * p * c,            # compare + select per cluster
            bytes_read=p * f * 4.0 + c * f * 4.0,
            bytes_written=p * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=p,
            seq_fraction=0.5,               # points streamed...
            strided_fraction=0.5,           # ...features strided across work items
            branch_fraction=0.15,           # data-dependent min updates
        )

    def profiles(self) -> list[KernelProfile]:
        features = np.empty((self.n_points, self.n_features), dtype=np.float32)
        clusters = np.empty((self.n_clusters, self.n_features), dtype=np.float32)
        return [self._profile_assign(None, features, clusters, None)]

    def trace_spec(self) -> trace_mod.TraceSpec:
        feature_bytes = self.n_points * self.n_features * 4
        membership_bytes = self.n_points * 4
        cluster_bytes = self.n_clusters * self.n_features * 4
        return trace_mod.TraceSpec.single(
            trace_mod.seq(feature_bytes, passes=2, budget=("mul", 0.8)),
            trace_mod.seq(membership_bytes, passes=2, offset=feature_bytes,
                          budget=("mul", 0.15)),
            trace_mod.seq(cluster_bytes, passes=8,
                          offset=feature_bytes + membership_bytes,
                          budget=("mul", 0.05)),
        )
