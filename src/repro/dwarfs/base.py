"""Benchmark base class.

Every Extended OpenDwarfs benchmark follows the same life cycle, which
mirrors the instrumented regions of the paper (§2: host setup, memory
transfer, kernel execution):

1. :meth:`host_setup` — generate input data, create buffers and build
   the program on a context;
2. :meth:`transfer_inputs` — enqueue host-to-device writes;
3. :meth:`run_iteration` — enqueue the kernels of one timed iteration
   (the region the paper loops for >= 2 s and reports);
4. :meth:`collect_results` — read results back;
5. :meth:`validate` — check results against a serial reference
   (paper §4.4.2: outputs compared against serial implementations or
   via norms).

Benchmarks also expose their Table 2 problem-size presets, their
device-side memory footprint (the quantity the paper verifies by
"printing the sum of the size of all memory allocated on the device"),
an architecture-independent kernel characterization for the analytic
model, and a representative memory-access trace for the cache-counter
verification of §4.4.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from ..cache import trace as trace_mod
from ..ocl.context import Context
from ..ocl.event import Event
from ..ocl.queue import CommandQueue
from ..perfmodel.characterization import KernelProfile

#: Canonical problem-size names, ordered smallest to largest (Table 2).
SIZES = ("tiny", "small", "medium", "large")


class ValidationError(AssertionError):
    """Benchmark results disagree with the serial reference."""


# ---------------------------------------------------------------------------
# Static launch model (consumed by repro.analysis.absint)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticBuffer:
    """One device (or host-staging) allocation of a benchmark run.

    ``nbytes`` is the declared size — what ``footprint_bytes()`` prices
    the buffer at.  ``kernel_bound`` distinguishes buffers some kernel
    launch binds from host-only staging (those are always priced at
    their declared size by the static footprint).
    """

    key: str
    nbytes: int
    kernel_bound: bool = True


@dataclass(frozen=True)
class StaticLaunch:
    """One kernel enqueue: NDRange, scalar arguments, buffer bindings.

    ``buffers`` maps kernel parameter names to ``(buffer key, byte
    offset)`` pairs — the offset supports benchmarks that bind row
    views of a larger allocation (cwt's per-scale output planes).
    """

    kernel: str
    global_size: tuple[int, ...]
    scalars: dict[str, float] = field(default_factory=dict)
    buffers: dict[str, tuple[str, int]] = field(default_factory=dict)
    local_size: tuple[int, ...] | None = None


@dataclass(frozen=True)
class StaticLaunchModel:
    """A benchmark's launch geometry, declared without executing it.

    This is the bridge between the dwarf layer and the §4.4 working-set
    verification: :func:`repro.analysis.absint.static_footprint`
    interprets ``source`` abstractly and substitutes each launch to
    reconstruct the benchmark's memory footprint from first principles.
    """

    source: str
    buffers: dict[str, StaticBuffer]
    launches: tuple[StaticLaunch, ...]
    macros: dict[str, float] = field(default_factory=dict)


class Benchmark(abc.ABC):
    """One OpenDwarfs benchmark.

    Subclasses set the class attributes and implement the abstract
    methods; the harness (:mod:`repro.harness.runner`) drives the life
    cycle uniformly across benchmarks and devices.
    """

    #: Benchmark name as used in the paper's tables ("kmeans", "lud", ...).
    name: ClassVar[str] = ""
    #: The Berkeley dwarf the benchmark represents.
    dwarf: ClassVar[str] = ""
    #: Table 2 scale parameters, keyed by size name.  Benchmarks with a
    #: single valid size (nqueens, and hmm in the evaluation) restrict
    #: this mapping.
    presets: ClassVar[dict] = {}
    #: Table 3 argument template; ``{phi}`` etc. substituted per size.
    args_template: ClassVar[str] = ""

    def __init__(self):
        self.context: Context | None = None
        self._setup_done = False

    # ------------------------------------------------------------------
    # Construction from the paper's tables
    # ------------------------------------------------------------------
    @classmethod
    def from_size(cls, size: str, **overrides) -> "Benchmark":
        """Instantiate at a Table 2 problem size ('tiny' .. 'large')."""
        if size not in cls.presets:
            valid = ", ".join(cls.presets)
            raise ValueError(
                f"{cls.name} has no {size!r} problem size (valid: {valid})"
            )
        return cls.from_scale(cls.presets[size], **overrides)

    @classmethod
    @abc.abstractmethod
    def from_scale(cls, phi, **overrides) -> "Benchmark":
        """Instantiate from a Table 2 scale parameter value."""

    @classmethod
    def available_sizes(cls) -> tuple[str, ...]:
        """The problem sizes this benchmark supports, in Table 2 order."""
        return tuple(s for s in SIZES if s in cls.presets)

    @classmethod
    def cli_args(cls, size: str) -> str:
        """The Table 3 argument string for a given size."""
        phi = cls.presets[size]
        if isinstance(phi, tuple):
            subs = {f"phi{i + 1}": v for i, v in enumerate(phi)}
            subs["phi"] = " ".join(str(v) for v in phi)
        else:
            subs = {"phi": phi}
        return cls.args_template.format(**subs)

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def host_setup(self, context: Context) -> None:
        """Generate inputs, allocate buffers, build the program."""

    @abc.abstractmethod
    def transfer_inputs(self, queue: CommandQueue) -> list[Event]:
        """Enqueue host-to-device input transfers."""

    @abc.abstractmethod
    def run_iteration(self, queue: CommandQueue) -> list[Event]:
        """Enqueue the kernels of one timed iteration."""

    @abc.abstractmethod
    def collect_results(self, queue: CommandQueue) -> list[Event]:
        """Enqueue device-to-host result transfers."""

    @abc.abstractmethod
    def validate(self) -> None:
        """Raise :class:`ValidationError` if results are wrong."""

    def teardown(self) -> None:
        """Release buffers.  Safe to call repeatedly."""
        if self.context is not None:
            self.context.release_all()

    # ------------------------------------------------------------------
    # Model hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def footprint_bytes(self) -> int:
        """Device-side memory footprint (sum of buffer sizes)."""

    def static_launches(self) -> StaticLaunchModel | None:
        """The benchmark's launch geometry, for static verification.

        Implementations must not require :meth:`host_setup` — the model
        is derived from the scale parameters alone, so the §4.4
        cross-check can price a working set without allocating it.
        Returning ``None`` (the default) opts out of the cross-check.
        """
        return None

    @abc.abstractmethod
    def profiles(self) -> list[KernelProfile]:
        """Per-iteration kernel characterizations for the analytic model."""

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Declarative spec for the hand-authored access trace.

        Default: two sequential passes over the footprint.  Benchmarks
        with distinctive locality override this with their own spec;
        ``access_trace`` interprets it.
        """
        return trace_mod.TraceSpec.single(
            trace_mod.seq(self.footprint_bytes(), passes=2))

    def access_trace(self, max_len: int = trace_mod.DEFAULT_MAX_LEN) -> np.ndarray:
        """Representative memory-access trace for counter verification."""
        return self.trace_spec().build(max_len=max_len, seed=getattr(self, "seed", 0))

    # ------------------------------------------------------------------
    def footprint_kib(self) -> float:
        return self.footprint_bytes() / 1024.0

    def run_complete(self, context: Context, queue: CommandQueue) -> None:
        """Convenience: full life cycle once, with validation."""
        self.host_setup(context)
        self.transfer_inputs(queue)
        self.run_iteration(queue)
        self.collect_results(queue)
        self.validate()

    def _require_setup(self) -> None:
        if not self._setup_done:
            raise RuntimeError(f"{self.name}: host_setup() has not run")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.dwarf}) {self.footprint_kib():.1f} KiB>"


def assert_close(actual, expected, rtol: float, what: str) -> None:
    """Norm-comparison helper (paper §4.4.2's 'compare norms' utility)."""
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    if not (np.iscomplexobj(actual) or np.iscomplexobj(expected)):
        actual = actual.astype(np.float64)
        expected = expected.astype(np.float64)
    if actual.shape != expected.shape:
        raise ValidationError(
            f"{what}: shape mismatch {actual.shape} vs {expected.shape}"
        )
    denom = np.linalg.norm(expected)
    err = np.linalg.norm(actual - expected) / (denom if denom else 1.0)
    if not np.isfinite(err) or err > rtol:
        raise ValidationError(f"{what}: relative error {err:.3e} exceeds {rtol:.0e}")
