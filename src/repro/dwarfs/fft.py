"""fft — the Spectral Methods dwarf (with dwt).

Radix-2 Stockham autosort FFT, the algorithm underlying Eric
Bainville's OpenCL FFT that the paper adopted after the original
OpenDwarfs FFT "returned incorrect results or failures on some
combinations of platforms and problem sizes" (§2).  Stockham needs no
bit-reversal pass: each of the log2(N) stages is one kernel launch
that ping-pongs between two buffers — hence the benchmark's device
footprint of two complex64 arrays (16·N bytes; the tiny size of 2048
points is exactly 32 KiB).

Validation compares against ``numpy.fft.fft`` by relative L2 norm.
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def stockham_stage(src: np.ndarray, dst: np.ndarray, n_total: int, stage: int) -> None:
    """One decimation-in-frequency Stockham stage.

    At stage ``t`` the data is logically an ``(n, s)`` matrix with
    ``n = N >> t`` and ``s = 1 << t``; rows ``p`` and ``p + n/2``
    combine into adjacent output rows ``2p`` and ``2p + 1``.
    """
    n = n_total >> stage
    s = 1 << stage
    m = n // 2
    x = src.reshape(n, s)
    y = dst.reshape(n, s)
    w = np.exp(-2j * np.pi * np.arange(m) / n).astype(src.dtype)
    a, b = x[:m], x[m:]
    y[0::2] = a + b
    y[1::2] = (a - b) * w[:, None]


def _fft_stage_kernel(nd, src, dst, n_total, stage):
    stockham_stage(src, dst, int(n_total), int(stage))


class FFT(Benchmark):
    """Spectral Methods dwarf: 1-D complex-to-complex FFT."""

    name = "fft"
    dwarf = "Spectral Methods"
    presets = {"tiny": 2048, "small": 16384, "medium": 524288, "large": 2097152}
    args_template = "{phi}"

    def __init__(self, n: int, seed: int = 99):
        super().__init__()
        if not _is_pow2(n):
            raise ValueError(f"FFT size must be a power of two, got {n}")
        self.n = int(n)
        self.stages = self.n.bit_length() - 1
        self.seed = seed
        self.signal: np.ndarray | None = None
        self.spectrum_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "FFT":
        return cls(n=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "FFT":
        """Parse the Table 3 form: a single size argument."""
        if len(argv) != 1:
            raise ValueError(f"fft: expected one size argument, got {argv!r}")
        return cls(n=int(argv[0]), **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Two complex64 ping-pong buffers."""
        return 2 * self.n * 8

    def static_launches(self) -> StaticLaunchModel:
        n = self.n
        launches: list[StaticLaunch] = []
        src, dst = "a", "b"
        for stage in range(self.stages):
            launches.append(StaticLaunch(
                "fft_radix2", (n // 2,),
                scalars={"n_total": n, "stage": stage},
                buffers={"src": (src, 0), "dst": (dst, 0)}))
            src, dst = dst, src
        return StaticLaunchModel(
            source=kernels_cl.FFT_CL,
            buffers={"a": StaticBuffer("a", n * 8),
                     "b": StaticBuffer("b", n * 8)},
            launches=tuple(launches),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        real = rng.standard_normal(self.n)
        imag = rng.standard_normal(self.n)
        self.signal = (real + 1j * imag).astype(np.complex64)

        self.buf_a = context.buffer_like(self.signal)
        self.buf_b = context.buffer_like(np.zeros(self.n, dtype=np.complex64))
        program = Program(context, [
            KernelSource("fft_radix2", _fft_stage_kernel, self._profile_stage,
                         cl_source=kernels_cl.FFT_CL),
        ]).build()
        self.kernel = program.create_kernel("fft_radix2")
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_write_buffer(self.buf_a, self.signal)]

    def run_iteration(self, queue) -> list[Event]:
        """One full transform: log2(N) ping-pong stage launches."""
        self._require_setup()
        # restore the input (the transform is out-of-place per stage but
        # overwrites both buffers across a full run)
        queue.enqueue_write_buffer(self.buf_a, self.signal)
        events = []
        src, dst = self.buf_a, self.buf_b
        for stage in range(self.stages):
            self.kernel.set_args(src, dst, self.n, stage)
            events.append(
                queue.enqueue_nd_range_kernel(self.kernel, (self.n // 2,))
            )
            src, dst = dst, src
        self._result_buffer = src  # holds the completed spectrum
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.spectrum_out = np.empty(self.n, dtype=np.complex64)
        return [queue.enqueue_read_buffer(self._result_buffer, self.spectrum_out)]

    def validate(self) -> None:
        if self.spectrum_out is None:
            raise ValidationError("fft: results were never collected")
        expected = np.fft.fft(self.signal.astype(np.complex128))
        # fp32 error grows ~ sqrt(log n)
        rtol = 1e-5 * np.sqrt(max(self.stages, 1)) * 20
        assert_close(self.spectrum_out, expected, rtol, "fft: spectrum vs numpy.fft")

    # ------------------------------------------------------------------
    def _profile_stage(self, nd, src, dst, n_total, stage) -> KernelProfile:
        n = int(n_total)
        return KernelProfile(
            name="fft_radix2",
            flops=10.0 * (n / 2),           # complex mul (6) + 2 complex adds (4)
            int_ops=4.0 * (n / 2),          # index arithmetic
            bytes_read=n * 8.0,
            bytes_written=n * 8.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=n // 2,
            seq_fraction=0.45,
            strided_fraction=0.35,          # stride-s / stride-n/2 access
            random_fraction=0.20,           # twiddle + scattered stores
        )

    def profiles(self) -> list[KernelProfile]:
        stage = self._profile_stage(None, None, None, self.n, 0)
        return [stage.scaled(self.stages)]

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Interleaved strided reads/sequential writes per stage."""
        half = self.n * 8  # one buffer
        div = 2 * max(self.stages, 1)  # per-stage budget, halved per stream
        groups = []
        for stage in range(self.stages):
            stride = max(8 * (1 << stage), 64)
            groups.append((
                trace_mod.strided_component(half, stride, passes=1,
                                            budget=("floordiv", div)),
                trace_mod.seq(half, passes=1, offset=half,
                              budget=("floordiv", div)),
            ))
        return trace_mod.TraceSpec(groups=tuple(groups))
