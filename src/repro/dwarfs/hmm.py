"""hmm — the Graphical Models dwarf.

One Baum-Welch re-estimation step for a discrete hidden Markov model
with N states and S output symbols (Table 2 parameters ``N,S``), using
Rabiner-scaled forward-backward recursions.  Kernel structure follows
the OpenCL benchmark: the forward and backward passes launch one
kernel per timestep (the recurrences are inherently sequential in t,
parallel across states), and three further kernels re-estimate pi, A
and B.

As in the paper, "validation of the correctness of results has not
occurred apart from over the tiny problem size, as such, it is the
only size examined in the evaluation" (§4.4.4) — our validation
(float64 reference implementation, norm comparison) runs at any size
but the figure harness measures tiny only.
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)

#: Observation-sequence length (fixed across problem sizes; the Table 2
#: parameters vary states and symbols).
T_OBSERVATIONS = 64


def _forward_kernel(nd, a, b, pi, obs, alpha, scale, t):
    """One scaled forward step: alpha[t] from alpha[t-1]."""
    t = int(t)
    if t == 0:
        alpha[0] = pi * b[:, obs[0]]
    else:
        alpha[t] = (alpha[t - 1] @ a) * b[:, obs[t]]
    total = alpha[t].sum()
    scale[t] = 1.0 / total
    alpha[t] *= scale[t]


def _backward_kernel(nd, a, b, obs, beta, scale, t):
    """One scaled backward step: beta[t] from beta[t+1]."""
    t = int(t)
    last = beta.shape[0] - 1
    if t == last:
        beta[last] = scale[last]
    else:
        beta[t] = scale[t] * (a @ (b[:, obs[t + 1]] * beta[t + 1]))


def _estimate_pi_kernel(nd, alpha, beta, scale, pi_out):
    """pi := gamma_0."""
    gamma0 = alpha[0] * beta[0] / scale[0]
    pi_out[...] = gamma0 / gamma0.sum()


def _estimate_a_kernel(nd, a, b, obs, alpha, beta, a_out):
    """A := expected transitions / expected visits."""
    t_len = alpha.shape[0]
    # xi summed over t: alpha[t] outer (A * B[:, o_{t+1}] * beta[t+1])
    numer = np.zeros_like(a)
    denom = np.zeros(a.shape[0], dtype=a.dtype)
    for t in range(t_len - 1):
        weighted = b[:, obs[t + 1]] * beta[t + 1]
        numer += a * np.outer(alpha[t], weighted)
        gamma_t = alpha[t] * beta[t]
        denom += gamma_t
    # Rabiner scaling: gamma_t here is alpha_hat*beta_hat*P(O)/c_t-ish;
    # both numerator and denominator carry the same factors, so the
    # ratio is the ML estimate after row normalisation.
    a_out[...] = numer / np.maximum(denom[:, None], 1e-30)
    a_out /= np.maximum(a_out.sum(axis=1, keepdims=True), 1e-30)


def _estimate_b_kernel(nd, obs, alpha, beta, scale, b_out):
    """B := expected emissions / expected visits."""
    t_len = alpha.shape[0]
    gamma = alpha * beta / scale[:, None]
    denom = gamma.sum(axis=0)
    b_out[...] = 0.0
    for t in range(t_len):
        b_out[:, obs[t]] += gamma[t]
    b_out /= np.maximum(denom[:, None], 1e-30)


class HMM(Benchmark):
    """Graphical Models dwarf: Baum-Welch re-estimation."""

    name = "hmm"
    dwarf = "Graphical Models"
    presets = {
        "tiny": (8, 1),
        "small": (900, 1),
        "medium": (1012, 1024),
        "large": (2048, 2048),
    }
    args_template = "-n {phi1} -s {phi2} -v s"

    def __init__(self, n_states: int, n_symbols: int = 1,
                 t_observations: int = T_OBSERVATIONS, seed: int = 29):
        super().__init__()
        if n_states < 2:
            raise ValueError(f"need at least 2 states, got {n_states}")
        if n_symbols < 1:
            raise ValueError(f"need at least 1 symbol, got {n_symbols}")
        self.n_states = int(n_states)
        self.n_symbols = int(n_symbols)
        self.t_obs = int(t_observations)
        self.seed = seed
        self.a_out: np.ndarray | None = None
        self.b_out: np.ndarray | None = None
        self.pi_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "HMM":
        n, s = phi
        return cls(n_states=n, n_symbols=s, **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "HMM":
        """Parse ``-n N -s S -v s`` (Table 3)."""
        n, s = None, 1
        i = 0
        while i < len(argv):
            if argv[i] == "-n":
                n = int(argv[i + 1]); i += 2
            elif argv[i] == "-s":
                s = int(argv[i + 1]); i += 2
            elif argv[i] == "-v":
                i += 2  # variant flag; only 's' (standard) is implemented
            else:
                raise ValueError(f"hmm: unknown argument {argv[i]!r}")
        if n is None:
            raise ValueError("hmm: -n <states> is required")
        return cls(n_states=n, n_symbols=s, **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        n, s, t = self.n_states, self.n_symbols, self.t_obs
        model = (n * n + n * s + n) * 4          # A, B, pi
        outputs = (n * n + n * s + n) * 4        # re-estimated copies
        lattices = 2 * t * n * 4                 # alpha, beta
        seq = t * 4 + t * 4                      # observations + scale
        return model + outputs + lattices + seq

    def static_launches(self) -> StaticLaunchModel:
        n, s, t_obs = self.n_states, self.n_symbols, self.t_obs
        launches: list[StaticLaunch] = []
        for t in range(t_obs):
            launches.append(StaticLaunch(
                "hmm_forward", (n,), scalars={"t": t},
                buffers={"a": ("a", 0), "b": ("b", 0), "pi": ("pi", 0),
                         "obs": ("obs", 0), "alpha": ("alpha", 0),
                         "scale": ("scale", 0)}))
        for t in reversed(range(t_obs)):
            launches.append(StaticLaunch(
                "hmm_backward", (n,), scalars={"t": t},
                buffers={"a": ("a", 0), "b": ("b", 0), "obs": ("obs", 0),
                         "beta": ("beta", 0), "scale": ("scale", 0)}))
        launches.append(StaticLaunch(
            "hmm_estimate_pi", (n,),
            buffers={"alpha": ("alpha", 0), "beta": ("beta", 0),
                     "scale": ("scale", 0), "pi_out": ("pi_out", 0)}))
        launches.append(StaticLaunch(
            "hmm_estimate_a", (n * n,),
            buffers={"a": ("a", 0), "b": ("b", 0), "obs": ("obs", 0),
                     "alpha": ("alpha", 0), "beta": ("beta", 0),
                     "a_out": ("a_out", 0)}))
        launches.append(StaticLaunch(
            "hmm_estimate_b", (n * s,),
            buffers={"obs": ("obs", 0), "alpha": ("alpha", 0),
                     "beta": ("beta", 0), "scale": ("scale", 0),
                     "b_out": ("b_out", 0)}))
        return StaticLaunchModel(
            source=kernels_cl.HMM_CL,
            macros={"N_STATES": n, "N_SYMBOLS": s, "T_OBS": t_obs},
            buffers={
                "a": StaticBuffer("a", n * n * 4),
                "b": StaticBuffer("b", n * s * 4),
                "pi": StaticBuffer("pi", n * 4),
                "obs": StaticBuffer("obs", t_obs * 4),
                "alpha": StaticBuffer("alpha", t_obs * n * 4),
                "beta": StaticBuffer("beta", t_obs * n * 4),
                "scale": StaticBuffer("scale", t_obs * 4),
                "a_out": StaticBuffer("a_out", n * n * 4),
                "b_out": StaticBuffer("b_out", n * s * 4),
                "pi_out": StaticBuffer("pi_out", n * 4),
            },
            launches=tuple(launches),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        n, s, t = self.n_states, self.n_symbols, self.t_obs

        def stochastic(shape):
            m = rng.uniform(0.1, 1.0, size=shape)
            return (m / m.sum(axis=-1, keepdims=True)).astype(np.float32)

        self.a0 = stochastic((n, n))
        self.b0 = stochastic((n, s))
        self.pi0 = stochastic((n,))
        self.obs = rng.integers(0, s, size=t, dtype=np.int32)

        self.buf_a = context.buffer_like(self.a0, MemFlags.READ_ONLY)
        self.buf_b = context.buffer_like(self.b0, MemFlags.READ_ONLY)
        self.buf_pi = context.buffer_like(self.pi0, MemFlags.READ_ONLY)
        self.buf_obs = context.buffer_like(self.obs, MemFlags.READ_ONLY)
        self.buf_alpha = context.buffer_like(np.zeros((t, n), np.float32))
        self.buf_beta = context.buffer_like(np.zeros((t, n), np.float32))
        self.buf_scale = context.buffer_like(np.zeros(t, np.float32))
        self.buf_a_out = context.buffer_like(np.zeros((n, n), np.float32))
        self.buf_b_out = context.buffer_like(np.zeros((n, s), np.float32))
        self.buf_pi_out = context.buffer_like(np.zeros(n, np.float32))

        program = Program(context, [
            KernelSource("hmm_forward", _forward_kernel, self._profile_step,
                         cl_source=kernels_cl.HMM_CL),
            KernelSource("hmm_backward", _backward_kernel, self._profile_step,
                         cl_source=kernels_cl.HMM_CL),
            KernelSource("hmm_estimate_pi", _estimate_pi_kernel, self._profile_pi,
                         cl_source=kernels_cl.HMM_CL),
            KernelSource("hmm_estimate_a", _estimate_a_kernel, self._profile_a,
                         cl_source=kernels_cl.HMM_CL),
            KernelSource("hmm_estimate_b", _estimate_b_kernel, self._profile_b,
                         cl_source=kernels_cl.HMM_CL),
        ]).build()
        self.kernels = program.all_kernels()
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [
            queue.enqueue_write_buffer(self.buf_a, self.a0),
            queue.enqueue_write_buffer(self.buf_b, self.b0),
            queue.enqueue_write_buffer(self.buf_pi, self.pi0),
            queue.enqueue_write_buffer(self.buf_obs, self.obs),
        ]

    def run_iteration(self, queue) -> list[Event]:
        """One Baum-Welch step: 2T recurrence launches + 3 estimators."""
        self._require_setup()
        events = []
        n = self.n_states
        fwd = self.kernels["hmm_forward"]
        for t in range(self.t_obs):
            fwd.set_args(self.buf_a, self.buf_b, self.buf_pi, self.buf_obs,
                         self.buf_alpha, self.buf_scale, t)
            events.append(queue.enqueue_nd_range_kernel(fwd, (n,)))
        bwd = self.kernels["hmm_backward"]
        for t in reversed(range(self.t_obs)):
            bwd.set_args(self.buf_a, self.buf_b, self.buf_obs,
                         self.buf_beta, self.buf_scale, t)
            events.append(queue.enqueue_nd_range_kernel(bwd, (n,)))
        kpi = self.kernels["hmm_estimate_pi"].set_args(
            self.buf_alpha, self.buf_beta, self.buf_scale, self.buf_pi_out)
        events.append(queue.enqueue_nd_range_kernel(kpi, (n,)))
        ka = self.kernels["hmm_estimate_a"].set_args(
            self.buf_a, self.buf_b, self.buf_obs, self.buf_alpha,
            self.buf_beta, self.buf_a_out)
        events.append(queue.enqueue_nd_range_kernel(ka, (n * n,)))
        kb = self.kernels["hmm_estimate_b"].set_args(
            self.buf_obs, self.buf_alpha, self.buf_beta, self.buf_scale,
            self.buf_b_out)
        events.append(queue.enqueue_nd_range_kernel(kb, (n * self.n_symbols,)))
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        n, s = self.n_states, self.n_symbols
        self.a_out = np.empty((n, n), np.float32)
        self.b_out = np.empty((n, s), np.float32)
        self.pi_out = np.empty(n, np.float32)
        self.scale_out = np.empty(self.t_obs, np.float32)
        return [
            queue.enqueue_read_buffer(self.buf_a_out, self.a_out),
            queue.enqueue_read_buffer(self.buf_b_out, self.b_out),
            queue.enqueue_read_buffer(self.buf_pi_out, self.pi_out),
            queue.enqueue_read_buffer(self.buf_scale, self.scale_out),
        ]

    # ------------------------------------------------------------------
    def log_likelihood(self) -> float:
        """log P(O | model) from the forward scaling factors."""
        if self.scale_out is None:
            raise ValidationError("hmm: results were never collected")
        return float(-np.log(self.scale_out.astype(np.float64)).sum())

    def _reference(self):
        """Float64 Baum-Welch step (independent formulation)."""
        a = self.a0.astype(np.float64)
        b = self.b0.astype(np.float64)
        pi = self.pi0.astype(np.float64)
        obs = self.obs
        t_len, n = self.t_obs, self.n_states
        alpha = np.zeros((t_len, n))
        c = np.zeros(t_len)
        alpha[0] = pi * b[:, obs[0]]
        c[0] = 1.0 / alpha[0].sum()
        alpha[0] *= c[0]
        for t in range(1, t_len):
            alpha[t] = (alpha[t - 1] @ a) * b[:, obs[t]]
            c[t] = 1.0 / alpha[t].sum()
            alpha[t] *= c[t]
        beta = np.zeros((t_len, n))
        beta[-1] = c[-1]
        for t in range(t_len - 2, -1, -1):
            beta[t] = c[t] * (a @ (b[:, obs[t + 1]] * beta[t + 1]))
        gamma = alpha * beta / c[:, None]
        gamma /= gamma.sum(axis=1, keepdims=True)
        xi_sum = np.zeros((n, n))
        for t in range(t_len - 1):
            xi_sum += a * np.outer(alpha[t], b[:, obs[t + 1]] * beta[t + 1])
        new_pi = gamma[0]
        new_a = xi_sum / np.maximum(
            (alpha[:-1] * beta[:-1]).sum(axis=0)[:, None], 1e-300
        )
        new_a /= new_a.sum(axis=1, keepdims=True)
        new_b = np.zeros((n, self.n_symbols))
        for t in range(t_len):
            new_b[:, obs[t]] += gamma[t]
        new_b /= gamma.sum(axis=0)[:, None]
        return new_a, new_b, new_pi, float(-np.log(c).sum())

    def validate(self) -> None:
        if self.a_out is None:
            raise ValidationError("hmm: results were never collected")
        ref_a, ref_b, ref_pi, ref_ll = self._reference()
        assert_close(self.pi_out, ref_pi, 1e-3, "hmm: pi re-estimate")
        assert_close(self.a_out, ref_a, 1e-3, "hmm: A re-estimate")
        assert_close(self.b_out, ref_b, 1e-3, "hmm: B re-estimate")
        if abs(self.log_likelihood() - ref_ll) > 1e-2 * max(abs(ref_ll), 1.0):
            raise ValidationError(
                f"hmm: log-likelihood {self.log_likelihood():.4f} vs "
                f"reference {ref_ll:.4f}"
            )

    # ------------------------------------------------------------------
    def _profile_step(self, nd, *args) -> KernelProfile:
        n = self.n_states
        return KernelProfile(
            name="hmm_step",
            flops=2.0 * n * n + 3.0 * n,
            int_ops=2.0 * n,
            bytes_read=(n * n + 3 * n) * 4.0,
            bytes_written=n * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=n,
            seq_fraction=0.7,
            strided_fraction=0.3,
        )

    def _profile_pi(self, nd, *args) -> KernelProfile:
        n = self.n_states
        return KernelProfile(
            name="hmm_estimate_pi", flops=4.0 * n, int_ops=n,
            bytes_read=3 * n * 4.0, bytes_written=n * 4.0,
            working_set_bytes=3 * n * 4.0, work_items=n,
        )

    def _profile_a(self, nd, *args) -> KernelProfile:
        n, t = self.n_states, self.t_obs
        return KernelProfile(
            name="hmm_estimate_a",
            flops=4.0 * t * n * n,
            int_ops=t * n,
            bytes_read=(t * 3 * n + n * n) * 4.0,
            bytes_written=n * n * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=n * n,
            seq_fraction=0.8, strided_fraction=0.2,
        )

    def _profile_b(self, nd, *args) -> KernelProfile:
        n, s, t = self.n_states, self.n_symbols, self.t_obs
        return KernelProfile(
            name="hmm_estimate_b",
            flops=3.0 * t * n,
            int_ops=t * n,
            bytes_read=t * 2 * n * 4.0,
            bytes_written=n * s * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=n * s,
            seq_fraction=0.7, strided_fraction=0.1, random_fraction=0.2,
        )

    def profiles(self) -> list[KernelProfile]:
        return [
            self._profile_step(None).scaled(2 * self.t_obs),
            self._profile_pi(None),
            self._profile_a(None),
            self._profile_b(None),
        ]

    def trace_spec(self) -> trace_mod.TraceSpec:
        """A-matrix re-streamed per timestep; lattices streamed once."""
        n, t = self.n_states, self.t_obs
        a_bytes = n * n * 4
        lattice_bytes = 2 * t * n * 4
        return trace_mod.TraceSpec.single(
            trace_mod.seq(a_bytes, passes=min(t, 8), budget=("floordiv", 2)),
            trace_mod.seq(lattice_bytes, passes=1, offset=a_bytes,
                          budget=("floordiv", 2)),
        )
