"""crc — the Combinational Logic dwarf.

Table-driven CRC-32 (the reflected IEEE 802.3 polynomial, identical to
``zlib.crc32``) over a message split into pages: one work item computes
the CRC of one page, and the host combines page CRCs into the
message CRC with the GF(2) matrix technique of zlib's
``crc32_combine`` — implemented here from scratch.

This benchmark is the paper's outlier: essentially zero floating-point
work, byte-serial table lookups, and page-level-only parallelism, so
"execution times for crc are lowest on CPU-type architectures" (§5.1,
Fig. 1) — the one benchmark where CPUs beat every GPU, and the one
benchmark where the CPU also wins on energy (Fig. 5).

Validation checks every page CRC and the combined message CRC against
``zlib.crc32``.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError)

#: Reflected CRC-32 polynomial (IEEE 802.3 / zlib).
POLY = 0xEDB88320

#: Page size each work item processes, bytes.
PAGE_BYTES = 1024


def make_table() -> np.ndarray:
    """The 256-entry reflected CRC-32 lookup table."""
    table = np.empty(256, dtype=np.uint32)
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ POLY if crc & 1 else crc >> 1
        table[i] = crc
    return table


_TABLE = make_table()


def crc32_bytes(data: bytes | np.ndarray, crc: int = 0) -> int:
    """Serial reference CRC-32 (bit-identical to ``zlib.crc32``)."""
    data = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else data
    c = np.uint32(crc ^ 0xFFFFFFFF)
    table = _TABLE
    for byte in data.tolist():
        c = np.uint32(table[(c ^ byte) & 0xFF] ^ (c >> np.uint32(8)))
    return int(c ^ np.uint32(0xFFFFFFFF))


# ----------------------------------------------------------------------
# GF(2) combination (zlib's crc32_combine)
# ----------------------------------------------------------------------
def _gf2_matrix_times(mat: list[int], vec: int) -> int:
    total = 0
    i = 0
    while vec:
        if vec & 1:
            total ^= mat[i]
        vec >>= 1
        i += 1
    return total


def _gf2_matrix_square(mat: list[int]) -> list[int]:
    return [_gf2_matrix_times(mat, mat[i]) for i in range(32)]


def crc32_combine(crc1: int, crc2: int, len2: int) -> int:
    """Combine CRCs of two concatenated blocks.

    ``crc32(a + b) == crc32_combine(crc32(a), crc32(b), len(b))``.
    Implements zlib's matrix-exponentiation algorithm: advancing a CRC
    over ``len2`` zero bytes is a linear operator over GF(2), applied
    by repeated squaring.
    """
    if len2 <= 0:
        return crc1
    # operator for one zero *bit*
    odd = [POLY] + [1 << (i - 1) for i in range(1, 32)]
    even = _gf2_matrix_square(odd)   # two bits
    odd = _gf2_matrix_square(even)   # four bits
    # apply len2 zero *bytes* = 8*len2 bits; start with the 8-bit operator
    crc1 = int(crc1)
    n = len2
    while True:
        even = _gf2_matrix_square(odd)
        if n & 1:
            crc1 = _gf2_matrix_times(even, crc1)
        n >>= 1
        if n == 0:
            break
        odd = _gf2_matrix_square(even)
        if n & 1:
            crc1 = _gf2_matrix_times(odd, crc1)
        n >>= 1
        if n == 0:
            break
    return crc1 ^ int(crc2)


def _crc_pages_kernel(nd, pages, lengths, table, crcs):
    """Per-page CRC-32, vectorised across pages.

    ``pages`` is (n_pages, PAGE_BYTES) uint8 (zero padded); ``lengths``
    holds each page's true byte count; ``table`` is the device copy of
    the 256-entry lookup table.  The byte loop is sequential (as CRC
    inherently is); all pages advance together.
    """
    n_pages, width = pages.shape
    c = np.full(n_pages, 0xFFFFFFFF, dtype=np.uint32)
    active_len = lengths.astype(np.int64)
    for pos in range(width):
        active = pos < active_len
        if not active.any():
            break
        idx = (c[active] ^ pages[active, pos]) & np.uint32(0xFF)
        c[active] = table[idx] ^ (c[active] >> np.uint32(8))
    crcs[...] = c ^ np.uint32(0xFFFFFFFF)


class CRC(Benchmark):
    """Combinational Logic dwarf: paged CRC-32."""

    name = "crc"
    dwarf = "Combinational Logic"
    presets = {"tiny": 2000, "small": 16000, "medium": 524000, "large": 4194304}
    args_template = "-i 1000 {phi}.txt"

    def __init__(self, n_bytes: int, inner_iterations: int = 1000,
                 page_bytes: int = PAGE_BYTES, seed: int = 5):
        super().__init__()
        if n_bytes <= 0:
            raise ValueError(f"message size must be positive, got {n_bytes}")
        self.n_bytes = int(n_bytes)
        self.inner_iterations = int(inner_iterations)
        self.page_bytes = int(page_bytes)
        self.n_pages = (self.n_bytes + self.page_bytes - 1) // self.page_bytes
        self.seed = seed
        self.message: np.ndarray | None = None
        self.crcs_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "CRC":
        return cls(n_bytes=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "CRC":
        """Parse ``-i N <size>.txt`` (Table 3)."""
        inner, size = 1000, None
        i = 0
        while i < len(argv):
            if argv[i] == "-i":
                inner = int(argv[i + 1]); i += 2
            else:
                size = int(argv[i].split(".")[0]); i += 1
        if size is None:
            raise ValueError("crc: message size argument required")
        return cls(n_bytes=size, inner_iterations=inner, **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Padded page matrix + lengths + per-page CRCs + lookup table."""
        return (self.n_pages * self.page_bytes + self.n_pages * 4
                + self.n_pages * 4 + 256 * 4)

    def static_launches(self) -> StaticLaunchModel:
        np_, pb = self.n_pages, self.page_bytes
        return StaticLaunchModel(
            source=kernels_cl.CRC_CL,
            macros={"PAGE_BYTES": pb},
            buffers={
                "pages": StaticBuffer("pages", np_ * pb),
                "lengths": StaticBuffer("lengths", np_ * 4),
                "table": StaticBuffer("table", 256 * 4),
                "crcs": StaticBuffer("crcs", np_ * 4),
            },
            launches=(
                StaticLaunch(
                    "crc_pages", (np_,),
                    buffers={"pages": ("pages", 0),
                             "lengths": ("lengths", 0),
                             "table": ("table", 0),
                             "crcs": ("crcs", 0)},
                ),
            ),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        self.message = rng.integers(0, 256, size=self.n_bytes, dtype=np.uint8)

        padded = np.zeros((self.n_pages, self.page_bytes), dtype=np.uint8)
        padded.reshape(-1)[: self.n_bytes] = self.message
        lengths = np.full(self.n_pages, self.page_bytes, dtype=np.int32)
        lengths[-1] = self.n_bytes - (self.n_pages - 1) * self.page_bytes
        self.lengths = lengths

        self.buf_pages = context.buffer_like(padded, MemFlags.READ_ONLY)
        self.buf_lengths = context.buffer_like(lengths, MemFlags.READ_ONLY)
        self.buf_table = context.buffer_like(_TABLE, MemFlags.READ_ONLY)
        self.buf_crcs = context.buffer_like(np.zeros(self.n_pages, dtype=np.uint32))
        program = Program(context, [
            KernelSource("crc_pages", _crc_pages_kernel, self._profile_crc,
                         cl_source=kernels_cl.CRC_CL),
        ]).build()
        self.kernel = program.create_kernel("crc_pages").set_args(
            self.buf_pages, self.buf_lengths, self.buf_table, self.buf_crcs
        )
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        padded = np.zeros((self.n_pages, self.page_bytes), dtype=np.uint8)
        padded.reshape(-1)[: self.n_bytes] = self.message
        return [
            queue.enqueue_write_buffer(self.buf_pages, padded),
            queue.enqueue_write_buffer(self.buf_lengths, self.lengths),
            queue.enqueue_write_buffer(self.buf_table, _TABLE),
        ]

    def run_iteration(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_nd_range_kernel(self.kernel, (self.n_pages,))]

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.crcs_out = np.empty(self.n_pages, dtype=np.uint32)
        return [queue.enqueue_read_buffer(self.buf_crcs, self.crcs_out)]

    def combined_crc(self) -> int:
        """Fold the page CRCs into the whole-message CRC."""
        if self.crcs_out is None:
            raise ValidationError("crc: results were never collected")
        total = int(self.crcs_out[0])
        for page in range(1, self.n_pages):
            total = crc32_combine(total, int(self.crcs_out[page]),
                                  int(self.lengths[page]))
        return total

    def validate(self) -> None:
        if self.crcs_out is None:
            raise ValidationError("crc: results were never collected")
        # every page against zlib
        for page in range(self.n_pages):
            start = page * self.page_bytes
            chunk = self.message[start : start + int(self.lengths[page])]
            expected = zlib.crc32(chunk.tobytes()) & 0xFFFFFFFF
            if int(self.crcs_out[page]) != expected:
                raise ValidationError(
                    f"crc: page {page} CRC {self.crcs_out[page]:#x} != "
                    f"zlib {expected:#x}"
                )
        # and the combination path
        whole = zlib.crc32(self.message.tobytes()) & 0xFFFFFFFF
        combined = self.combined_crc()
        if combined != whole:
            raise ValidationError(
                f"crc: combined CRC {combined:#x} != zlib {whole:#x}"
            )

    # ------------------------------------------------------------------
    def _profile_crc(self, nd, pages=None, lengths=None, table=None,
                     crcs=None) -> KernelProfile:
        """Characterise the OpenDwarfs CRC kernel.

        The original OpenCL kernel walks the message byte-serially: each
        step's table index depends on the previous CRC value, a single
        dependent chain of ~6 ops per byte with essentially no
        work-item parallelism.  That chain is why "execution times for
        crc are lowest on CPU-type architectures" (paper §5.1): an
        out-of-order CPU steps the chain every few cycles, while a GPU
        lane pays tens of cycles per step and the rest of the device
        idles.  (Our *functional* kernel splits the message into pages
        purely so the numpy execution is vectorised; the page CRCs are
        recombined with crc32_combine and validated against zlib.)
        """
        total_bytes = float(self.n_bytes)
        return KernelProfile(
            name="crc_pages",
            flops=0.0,
            int_ops=0.0,                    # all work is on the chain
            bytes_read=0.0,                 # chain steps include their loads
            bytes_written=4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=1,                   # a single serial task
            seq_fraction=1.0,
            branch_fraction=0.05,
            chain_ops=6.0 * total_bytes,    # xor, shift, mask, lookup per byte
        )

    def profiles(self) -> list[KernelProfile]:
        return [self._profile_crc(None, None, None, None)]

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Message streaming interleaved with hot table lookups."""
        return trace_mod.TraceSpec.single(
            trace_mod.seq(self.n_bytes, element_bytes=1, passes=2,
                          budget=("floordiv", 2)),
            trace_mod.random_component(256 * 4, seed_offset=1,
                                       offset=self.n_pages * self.page_bytes,
                                       budget=("floordiv", 2)),
        )
