"""gem — the N-Body Methods dwarf.

Gemnoui computes the electrostatic potential of a biomolecular
structure: for every vertex of the molecular surface, the Coulomb sum
over all atom partial charges (an all-pairs O(V·A) kernel, heavily
floating-point bound — the classic N-body pattern).

Input molecules are the synthetic structures of
:mod:`repro.io.molecules`, whose device footprints match the paper's
four datasets (4TUT / 2D3V / nucleosome / 1KX5).  As in the paper —
where uninitialised values made the medium/large molecules unreliable
and only the tiny size is evaluated (Fig. 4a) — the evaluation harness
runs the tiny (4TUT) dataset; the other sizes remain fully runnable.

Validation compares against a float64 direct sum.
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..io import molecules as mol
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)

#: Softening term keeping the kernel finite if a vertex touches an atom.
SOFTENING = 1e-6

#: Atoms processed per inner tile (the OpenCL kernel's local-memory tile).
TILE = 256


def _gem_kernel(nd, atoms, vertices, potential):
    """Coulomb sum, tiled over atoms to bound temporary memory."""
    pos = atoms[:, :3]
    charge = atoms[:, 3]
    acc = np.zeros(len(vertices), dtype=np.float32)
    for start in range(0, len(atoms), TILE):
        p = pos[start : start + TILE]
        q = charge[start : start + TILE]
        # (V, tile) pairwise distances
        delta = vertices[:, None, :] - p[None, :, :]
        r = np.sqrt((delta * delta).sum(axis=2) + SOFTENING)
        acc += (q[None, :] / r).sum(axis=1, dtype=np.float32)
    potential[...] = acc


class GEM(Benchmark):
    """N-Body Methods dwarf: biomolecular electrostatic potential."""

    name = "gem"
    dwarf = "N-Body Methods"
    presets = {"tiny": "4TUT", "small": "2D3V", "medium": "nucleosome",
               "large": "1KX5"}
    args_template = "{phi} 80 1 0"

    def __init__(self, dataset: str = "4TUT", seed: int = 17):
        super().__init__()
        if dataset not in mol.MOLECULES:
            known = ", ".join(mol.MOLECULES)
            raise ValueError(f"unknown gem dataset {dataset!r} (known: {known})")
        self.dataset = dataset
        self.spec = mol.MOLECULES[dataset]
        self.seed = seed
        self.molecule: mol.Molecule | None = None
        self.potential_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "GEM":
        return cls(dataset=str(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "GEM":
        """Parse ``<molecule> 80 1 0`` (Table 3; trailing numbers are
        the gem resolution/flags, fixed across sizes)."""
        if not argv:
            raise ValueError("gem: molecule name required")
        return cls(dataset=argv[0], **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        return self.spec.footprint_bytes

    def static_launches(self) -> StaticLaunchModel:
        na, nv = self.spec.n_atoms, self.spec.n_vertices
        return StaticLaunchModel(
            source=kernels_cl.GEM_CL,
            macros={"N_ATOMS": na, "SOFTENING": SOFTENING},
            buffers={
                "atoms": StaticBuffer("atoms", na * mol.ATOM_BYTES),
                # (nv, 3) float32 positions; with the nv*4 potential this
                # sums to the spec's VERTEX_BYTES per vertex
                "vertices": StaticBuffer("vertices", nv * 12),
                "potential": StaticBuffer("potential", nv * 4),
            },
            launches=(
                StaticLaunch(
                    "gem_potential", (nv,),
                    buffers={"atoms": ("atoms", 0),
                             "vertices": ("vertices", 0),
                             "potential": ("potential", 0)},
                ),
            ),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        self.molecule = mol.generate(self.spec, seed=self.seed)
        self.buf_atoms = context.buffer_like(self.molecule.atoms, MemFlags.READ_ONLY)
        self.buf_vertices = context.buffer_like(self.molecule.vertices,
                                                MemFlags.READ_ONLY)
        self.buf_potential = context.buffer_like(
            np.zeros(self.spec.n_vertices, dtype=np.float32)
        )
        program = Program(context, [
            KernelSource("gem_potential", _gem_kernel, self._profile_gem,
                         cl_source=kernels_cl.GEM_CL),
        ]).build()
        self.kernel = program.create_kernel("gem_potential").set_args(
            self.buf_atoms, self.buf_vertices, self.buf_potential
        )
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [
            queue.enqueue_write_buffer(self.buf_atoms, self.molecule.atoms),
            queue.enqueue_write_buffer(self.buf_vertices, self.molecule.vertices),
        ]

    def run_iteration(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_nd_range_kernel(self.kernel, (self.spec.n_vertices,))]

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.potential_out = np.empty(self.spec.n_vertices, dtype=np.float32)
        return [queue.enqueue_read_buffer(self.buf_potential, self.potential_out)]

    def validate(self) -> None:
        if self.potential_out is None:
            raise ValidationError("gem: results were never collected")
        pos = self.molecule.atoms[:, :3].astype(np.float64)
        charge = self.molecule.atoms[:, 3].astype(np.float64)
        vertices = self.molecule.vertices.astype(np.float64)
        # float64 direct sum, chunked over vertices
        expected = np.empty(len(vertices))
        chunk = 2048
        for start in range(0, len(vertices), chunk):
            v = vertices[start : start + chunk]
            delta = v[:, None, :] - pos[None, :, :]
            r = np.sqrt((delta**2).sum(axis=2) + SOFTENING)
            expected[start : start + chunk] = (charge[None, :] / r).sum(axis=1)
        assert_close(self.potential_out, expected, 1e-3,
                     "gem: potential vs float64 direct sum")

    # ------------------------------------------------------------------
    def _profile_gem(self, nd, atoms=None, vertices=None, potential=None
                     ) -> KernelProfile:
        v, a = self.spec.n_vertices, self.spec.n_atoms
        pairs = float(v) * a
        return KernelProfile(
            name="gem_potential",
            flops=11.0 * pairs,             # 3 sub, 3 mul, 2 add, rsqrt(2), div
            int_ops=2.0 * pairs,
            bytes_read=v * 12.0 + a * 16.0 * max(v // 4096, 1),  # atoms re-streamed per tile group
            bytes_written=v * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=v,
            seq_fraction=0.95,
            strided_fraction=0.05,
            branch_fraction=0.02,
        )

    def profiles(self) -> list[KernelProfile]:
        return [self._profile_gem(None)]

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Vertices streamed once; atoms re-streamed (high reuse)."""
        atom_bytes = self.spec.n_atoms * mol.ATOM_BYTES
        vertex_bytes = self.spec.n_vertices * mol.VERTEX_BYTES
        return trace_mod.TraceSpec.single(
            trace_mod.seq(atom_bytes, passes=4, budget=("floordiv", 2)),
            trace_mod.seq(vertex_bytes, passes=1, offset=atom_bytes,
                          budget=("floordiv", 2)),
        )
