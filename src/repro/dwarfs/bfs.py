"""bfs — the Graph Traversal dwarf (extension).

The paper's stated aim is "to achieve a full representation of each
dwarf" (§2); Graph Traversal is absent from its evaluated set (the
OpenDwarfs suite carries a bfs code the paper did not curate).  This
extension supplies it: level-synchronous breadth-first search over a
synthetic sparse graph in CSR adjacency form — one kernel launch per
frontier level, data-dependent gather access, almost no arithmetic:
the dwarf's signature profile ("indirect lookups, little computation").

Validation compares the distance labelling against an independent
deque-based serial BFS, and against ``networkx`` single-source
shortest path lengths.
"""

from __future__ import annotations

import collections

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError)

#: Average out-degree of the synthetic graphs.
AVG_DEGREE = 8

#: Label for unreached vertices.
UNREACHED = np.int32(-1)


def generate_graph(n: int, avg_degree: int, seed: int):
    """A connected random graph in CSR form (row_ptr, columns).

    A Hamiltonian backbone guarantees connectivity (every vertex links
    to its successor), and random extra edges supply the irregular
    fan-out; edges are undirected (stored both ways).
    """
    rng = np.random.default_rng(seed)
    extra = max((avg_degree - 2) // 2, 1) * n
    src = np.concatenate([np.arange(n, dtype=np.int64),
                          rng.integers(0, n, extra)])
    dst = np.concatenate([(np.arange(n, dtype=np.int64) + 1) % n,
                          rng.integers(0, n, extra)])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # both directions
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.lexsort((all_dst, all_src))
    all_src, all_dst = all_src[order], all_dst[order]
    counts = np.bincount(all_src, minlength=n)
    row_ptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(counts, out=row_ptr[1:])
    return row_ptr, all_dst.astype(np.int32)


def _bfs_level_kernel(nd, row_ptr, columns, levels, frontier_flags, depth):
    """Expand one frontier level, vectorised over frontier vertices."""
    depth = np.int32(depth)
    frontier = np.nonzero(frontier_flags)[0]
    frontier_flags[...] = 0
    if len(frontier) == 0:
        return
    starts = row_ptr[frontier].astype(np.int64)
    ends = row_ptr[frontier + 1].astype(np.int64)
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return
    # vectorised ragged gather of all neighbour lists of the frontier
    run_starts = np.cumsum(lengths) - lengths
    positions = np.arange(total)
    idx = np.repeat(starts, lengths) + (positions - np.repeat(run_starts, lengths))
    neighbours = columns[idx]
    fresh = neighbours[levels[neighbours] == UNREACHED]
    if len(fresh):
        levels[fresh] = depth + 1
        frontier_flags[fresh] = 1


class BFS(Benchmark):
    """Graph Traversal dwarf: level-synchronous breadth-first search."""

    name = "bfs"
    dwarf = "Graph Traversal"
    presets = {"tiny": 640, "small": 5248, "medium": 167936, "large": 671744}
    args_template = "{phi} 8"

    def __init__(self, n: int, avg_degree: int = AVG_DEGREE, source: int = 0,
                 seed: int = 31):
        super().__init__()
        if n < 2:
            raise ValueError(f"graph needs at least 2 vertices, got {n}")
        self.n = int(n)
        self.avg_degree = int(avg_degree)
        self.source = int(source) % self.n
        self.seed = seed
        self.levels_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "BFS":
        return cls(n=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "BFS":
        """Parse ``N [avg_degree]``."""
        if not 1 <= len(argv) <= 2:
            raise ValueError(f"bfs: expected 'N [degree]', got {argv!r}")
        kwargs = dict(n=int(argv[0]))
        if len(argv) == 2:
            kwargs["avg_degree"] = int(argv[1])
        return cls(**kwargs, **overrides)

    # ------------------------------------------------------------------
    def _edge_estimate(self) -> int:
        # backbone (n) + extras, doubled for both directions
        extra = max((self.avg_degree - 2) // 2, 1) * self.n
        return 2 * (self.n + extra)

    def footprint_bytes(self) -> int:
        """CSR adjacency + level labels + frontier flags."""
        edges = (len(self.columns) if hasattr(self, "columns")
                 else self._edge_estimate())
        return (self.n + 1) * 4 + edges * 4 + self.n * 4 + self.n

    def static_launches(self) -> StaticLaunchModel:
        n = self.n
        edges = (len(self.columns) if hasattr(self, "columns")
                 else self._edge_estimate())
        # one representative frontier launch: the footprint is
        # depth-independent, so a single level stands in for the
        # data-dependent launch count
        return StaticLaunchModel(
            source=kernels_cl.BFS_CL,
            buffers={
                "row_ptr": StaticBuffer("row_ptr", (n + 1) * 4),
                "columns": StaticBuffer("columns", edges * 4),
                "levels": StaticBuffer("levels", n * 4),
                "flags": StaticBuffer("flags", n),
            },
            launches=(
                StaticLaunch(
                    "bfs_level", (n,), scalars={"depth": 0},
                    buffers={"row_ptr": ("row_ptr", 0),
                             "columns": ("columns", 0),
                             "levels": ("levels", 0),
                             "frontier_flags": ("flags", 0)},
                ),
            ),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        self.row_ptr, self.columns = generate_graph(
            self.n, self.avg_degree, self.seed)
        levels = np.full(self.n, UNREACHED, dtype=np.int32)
        levels[self.source] = 0
        flags = np.zeros(self.n, dtype=np.uint8)
        flags[self.source] = 1
        self._initial_levels = levels
        self._initial_flags = flags

        self.buf_row_ptr = context.buffer_like(self.row_ptr, MemFlags.READ_ONLY)
        self.buf_columns = context.buffer_like(self.columns, MemFlags.READ_ONLY)
        self.buf_levels = context.buffer_like(levels)
        self.buf_flags = context.buffer_like(flags)
        program = Program(context, [
            KernelSource("bfs_level", _bfs_level_kernel, self._profile_level,
                         cl_source=kernels_cl.BFS_CL),
        ]).build()
        self.kernel = program.create_kernel("bfs_level")
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [
            queue.enqueue_write_buffer(self.buf_row_ptr, self.row_ptr),
            queue.enqueue_write_buffer(self.buf_columns, self.columns),
            queue.enqueue_write_buffer(self.buf_levels, self._initial_levels),
            queue.enqueue_write_buffer(self.buf_flags, self._initial_flags),
        ]

    def run_iteration(self, queue) -> list[Event]:
        """One full traversal: a launch per level until the frontier dies."""
        self._require_setup()
        queue.enqueue_write_buffer(self.buf_levels, self._initial_levels)
        queue.enqueue_write_buffer(self.buf_flags, self._initial_flags)
        events = []
        depth = 0
        while self.buf_flags.array.any():
            self.kernel.set_args(self.buf_row_ptr, self.buf_columns,
                                 self.buf_levels, self.buf_flags, depth)
            events.append(queue.enqueue_nd_range_kernel(self.kernel, (self.n,)))
            depth += 1
            if depth > self.n:  # safety: no graph has deeper BFS
                raise RuntimeError("bfs: frontier failed to terminate")
        self._depth = depth
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.levels_out = np.empty(self.n, dtype=np.int32)
        return [queue.enqueue_read_buffer(self.buf_levels, self.levels_out)]

    # ------------------------------------------------------------------
    def _reference_serial(self) -> np.ndarray:
        """Deque-based serial BFS (independent code path)."""
        levels = np.full(self.n, -1, dtype=np.int64)
        levels[self.source] = 0
        queue = collections.deque([self.source])
        while queue:
            v = queue.popleft()
            for u in self.columns[self.row_ptr[v]:self.row_ptr[v + 1]]:
                if levels[u] == -1:
                    levels[u] = levels[v] + 1
                    queue.append(int(u))
        return levels

    def validate(self) -> None:
        if self.levels_out is None:
            raise ValidationError("bfs: results were never collected")
        expected = self._reference_serial()
        if not np.array_equal(self.levels_out.astype(np.int64), expected):
            bad = int((self.levels_out != expected).sum())
            raise ValidationError(f"bfs: {bad}/{self.n} level labels disagree")
        # the backbone guarantees full reachability
        if (self.levels_out == UNREACHED).any():
            raise ValidationError("bfs: connected graph left vertices unreached")

    def validate_against_networkx(self) -> None:
        """Cross-check with networkx (slower; used in tests)."""
        import networkx as nx
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for v in range(self.n):
            for u in self.columns[self.row_ptr[v]:self.row_ptr[v + 1]]:
                g.add_edge(v, int(u))
        expected = nx.single_source_shortest_path_length(g, self.source)
        for v in range(self.n):
            if self.levels_out[v] != expected[v]:
                raise ValidationError(
                    f"bfs: vertex {v} level {self.levels_out[v]} != "
                    f"networkx {expected[v]}")

    # ------------------------------------------------------------------
    def _profile_level(self, nd, *args) -> KernelProfile:
        edges = self._edge_estimate()
        depth_est = max(self._estimated_depth(), 1)
        edges_per_level = edges / depth_est
        frontier = max(self.n // depth_est, 1)
        return KernelProfile(
            name="bfs_level",
            flops=0.0,
            int_ops=4.0 * edges_per_level,
            bytes_read=edges_per_level * 8.0 + frontier * 8.0,
            bytes_written=frontier * 5.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=frontier,
            seq_fraction=0.2,
            strided_fraction=0.1,
            random_fraction=0.7,          # the neighbour gather
            branch_fraction=0.4,
        )

    def _estimated_depth(self) -> int:
        """Expected BFS depth: ~log(n)/log(avg_degree) for random graphs."""
        import math
        return max(int(math.log(max(self.n, 2))
                       / math.log(max(self.avg_degree, 2))) + 2, 2)

    def profiles(self) -> list[KernelProfile]:
        return [self._profile_level(None).scaled(self._estimated_depth())]

    def trace_spec(self) -> trace_mod.TraceSpec:
        adjacency_bytes = (self.n + 1) * 4 + self._edge_estimate() * 4
        levels_bytes = self.n * 4
        return trace_mod.TraceSpec.single(
            trace_mod.seq(adjacency_bytes, passes=1, budget=("floordiv", 2)),
            trace_mod.random_component(levels_bytes, seed_offset=3,
                                       offset=adjacency_bytes,
                                       budget=("floordiv", 2)),
        )
