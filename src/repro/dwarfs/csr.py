"""csr — the Sparse Linear Algebra dwarf.

Sparse matrix-vector multiply (y = A·x) over a CSR matrix produced by
the ``createcsr`` generator (Table 3: ``createcsr -n Φ -d 5000``, i.e.
0.5% dense).  One work item computes one row; the gather of ``x`` via
the column indices is the benchmark's signature random-access pattern.

Validation compares the fp32 device result against a float64 serial
row-by-row SpMV (an independent code path in :mod:`repro.io.csrfile`).
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..io import csrfile
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)

#: Table 3 density parameter (0.5% dense).
DENSITY_PARAM = 5000


def _spmv_kernel(nd, row_ptr, col_idx, values, x, y):
    """CSR SpMV, vectorised with segment sums."""
    products = values * x[col_idx]
    # segment-sum products into rows via cumulative sums at row bounds
    cumulative = np.concatenate(([0.0], np.cumsum(products, dtype=np.float64)))
    sums = cumulative[row_ptr[1:]] - cumulative[row_ptr[:-1]]
    y[:] = sums.astype(y.dtype)


class CSR(Benchmark):
    """Sparse Linear Algebra dwarf: CSR SpMV."""

    name = "csr"
    dwarf = "Sparse Linear Algebra"
    presets = {"tiny": 736, "small": 2416, "medium": 14336, "large": 16384}
    args_template = "-i createcsr -n {phi} -d 5000"

    def __init__(self, n: int, density_param: int = DENSITY_PARAM, seed: int = 1234):
        super().__init__()
        if n <= 0:
            raise ValueError(f"matrix size must be positive, got {n}")
        self.n = int(n)
        self.density_param = int(density_param)
        self.seed = seed
        self.matrix: csrfile.CSRMatrix | None = None
        self.x: np.ndarray | None = None
        self.y_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "CSR":
        return cls(n=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "CSR":
        """Parse ``-n N [-d D]`` (the createcsr parameters; the ``-i``
        file indirection of Table 3 is resolved by generating the same
        matrix the file would contain)."""
        n, d = None, DENSITY_PARAM
        i = 0
        while i < len(argv):
            if argv[i] == "-n":
                n = int(argv[i + 1]); i += 2
            elif argv[i] == "-d":
                d = int(argv[i + 1]); i += 2
            elif argv[i] == "-i":
                i += 1  # next token is the generated file; ignored
            else:
                i += 1
        if n is None:
            raise ValueError("csr: -n <size> is required")
        return cls(n=n, density_param=d, **overrides)

    # ------------------------------------------------------------------
    def _nnz_estimate(self) -> int:
        density = self.density_param / csrfile.DENSITY_DENOMINATOR
        return max(int(round(self.n * self.n * density)), self.n)

    def footprint_bytes(self) -> int:
        """Matrix arrays + x + y (estimated before generation)."""
        if self.matrix is not None:
            nnz = self.matrix.nnz
        else:
            nnz = self._nnz_estimate()
        matrix = (self.n + 1) * 4 + nnz * 8
        vectors = 2 * self.n * 4
        return matrix + vectors

    def static_launches(self) -> StaticLaunchModel:
        n = self.n
        nnz = self.matrix.nnz if self.matrix is not None else self._nnz_estimate()
        return StaticLaunchModel(
            source=kernels_cl.CSR_CL,
            buffers={
                "row_ptr": StaticBuffer("row_ptr", (n + 1) * 4),
                "col_idx": StaticBuffer("col_idx", nnz * 4),
                "values": StaticBuffer("values", nnz * 4),
                "x": StaticBuffer("x", n * 4),
                "y": StaticBuffer("y", n * 4),
            },
            launches=(
                StaticLaunch(
                    "csr_spmv", (n,),
                    buffers={"row_ptr": ("row_ptr", 0),
                             "col_idx": ("col_idx", 0),
                             "values": ("values", 0),
                             "x": ("x", 0),
                             "y": ("y", 0)},
                ),
            ),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        self.matrix = csrfile.createcsr(self.n, self.density_param, seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        self.x = rng.uniform(-1.0, 1.0, size=self.n).astype(np.float32)

        self.buf_row_ptr = context.buffer_like(self.matrix.row_ptr, MemFlags.READ_ONLY)
        self.buf_col_idx = context.buffer_like(self.matrix.col_idx, MemFlags.READ_ONLY)
        self.buf_values = context.buffer_like(self.matrix.values, MemFlags.READ_ONLY)
        self.buf_x = context.buffer_like(self.x, MemFlags.READ_ONLY)
        self.buf_y = context.buffer_like(np.zeros(self.n, dtype=np.float32))

        program = Program(context, [
            KernelSource("csr_spmv", _spmv_kernel, self._profile_spmv,
                         cl_source=kernels_cl.CSR_CL),
        ]).build()
        self.kernel = program.create_kernel("csr_spmv").set_args(
            self.buf_row_ptr, self.buf_col_idx, self.buf_values,
            self.buf_x, self.buf_y,
        )
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [
            queue.enqueue_write_buffer(self.buf_row_ptr, self.matrix.row_ptr),
            queue.enqueue_write_buffer(self.buf_col_idx, self.matrix.col_idx),
            queue.enqueue_write_buffer(self.buf_values, self.matrix.values),
            queue.enqueue_write_buffer(self.buf_x, self.x),
        ]

    def run_iteration(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_nd_range_kernel(self.kernel, (self.n,))]

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.y_out = np.empty(self.n, dtype=np.float32)
        return [queue.enqueue_read_buffer(self.buf_y, self.y_out)]

    def validate(self) -> None:
        if self.y_out is None:
            raise ValidationError("csr: results were never collected")
        expected = self.matrix.matvec_reference(self.x.astype(np.float64))
        assert_close(self.y_out, expected, 1e-4, "csr: SpMV result")

    # ------------------------------------------------------------------
    def _profile_spmv(self, nd, row_ptr, col_idx, values, x, y) -> KernelProfile:
        nnz = len(values)
        n = len(y)
        return KernelProfile(
            name="csr_spmv",
            flops=2.0 * nnz,
            int_ops=2.0 * nnz + n,          # index arithmetic + row loop
            bytes_read=nnz * 8.0 + (n + 1) * 4.0 + n * 4.0,
            bytes_written=n * 4.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=n,
            seq_fraction=0.55,              # values/cols/rowptr stream
            strided_fraction=0.05,
            random_fraction=0.40,           # the x gather
            branch_fraction=0.1,            # irregular row lengths
        )

    def profiles(self) -> list[KernelProfile]:
        nnz = self.matrix.nnz if self.matrix is not None else self._nnz_estimate()
        values = np.empty(nnz, dtype=np.float32)
        y = np.empty(self.n, dtype=np.float32)
        return [self._profile_spmv(None, None, None, values, None, y)]

    def trace_spec(self) -> trace_mod.TraceSpec:
        """Streaming over matrix arrays interleaved with random x gathers."""
        nnz = self.matrix.nnz if self.matrix is not None else self._nnz_estimate()
        matrix_bytes = nnz * 8 + (self.n + 1) * 4
        x_bytes = self.n * 4
        return trace_mod.TraceSpec.single(
            trace_mod.seq(matrix_bytes, passes=2, budget=("mul", 0.6)),
            trace_mod.random_component(x_bytes, seed_offset=2,
                                       offset=matrix_bytes,
                                       budget=("mul", 0.4)),
        )
