"""cwt — continuous wavelet transform (planned extension, paper §2).

"We have also added a 2-D discrete wavelet transform from the Rodinia
suite ... and **we plan to add a continuous wavelet transform code**."
This module delivers that planned benchmark: a Morlet CWT of a 1-D
signal across a bank of scales, computed the way GPU implementations
do it — one FFT of the signal, then per-scale frequency-domain
multiplication with the wavelet's spectrum and an inverse FFT
(one kernel launch per scale).

It is an *extension* benchmark: it registers in
:data:`repro.dwarfs.registry.EXTENSIONS` rather than the paper's
Table 2/3 set, so the reproduced tables stay faithful, but it runs
under exactly the same harness, sizing and model machinery.

Validation: a float64 direct time-domain convolution reference on a
subset of scales.
"""

from __future__ import annotations

import numpy as np

from ..cache import trace as trace_mod
from ..ocl import Context, Event, KernelSource, MemFlags, Program
from ..perfmodel.characterization import KernelProfile
from . import kernels_cl
from .base import (Benchmark, StaticBuffer, StaticLaunch, StaticLaunchModel,
                   ValidationError, assert_close)

#: Morlet centre frequency (rad/s), the conventional omega0.
OMEGA0 = 6.0

#: Scales per decade in the default bank.
SCALES_PER_OCTAVE = 4


def morlet_spectrum(n: int, scale: float, dt: float = 1.0) -> np.ndarray:
    """Frequency-domain Morlet wavelet at one scale, for an n-point FFT.

    The (analytic) Morlet has spectrum
    ``pi^-1/4 * H(w) * exp(-(s*w - w0)^2 / 2)`` where H is the unit
    step; normalised so energy is scale-invariant.
    """
    omega = 2.0 * np.pi * np.fft.fftfreq(n, d=dt)
    s_omega = scale * omega
    spectrum = np.zeros(n)
    positive = omega > 0
    spectrum[positive] = (np.pi ** -0.25) * np.exp(
        -0.5 * (s_omega[positive] - OMEGA0) ** 2)
    return (spectrum * np.sqrt(2.0 * np.pi * scale / dt)).astype(np.float64)


def morlet_time(scale: float, length: int, dt: float = 1.0) -> np.ndarray:
    """Time-domain analytic Morlet at one scale (validation reference)."""
    half = length // 2
    t = (np.arange(length) - half) * dt
    x = t / scale
    wave = (np.pi ** -0.25) * np.exp(1j * OMEGA0 * x) * np.exp(-0.5 * x * x)
    return wave * (dt / np.sqrt(scale))


def default_scales(n_scales: int, smallest: float = 4.0) -> np.ndarray:
    """A geometric bank of ``n_scales`` scales, SCALES_PER_OCTAVE/octave.

    The smallest scale of 4 samples keeps the Morlet spectrum
    negligible at Nyquist (at scale 2 the wavelet aliases).
    """
    return smallest * 2.0 ** (np.arange(n_scales) / SCALES_PER_OCTAVE)


def _cwt_scale_kernel(nd, signal_hat, out, scale, n, dt):
    """One scale: multiply by the wavelet spectrum, inverse FFT."""
    n = int(n)
    psi = morlet_spectrum(n, float(scale), float(dt))
    out[...] = np.fft.ifft(signal_hat * psi).astype(np.complex64)


def _fft_kernel(nd, signal, signal_hat):
    """Forward FFT of the input signal."""
    signal_hat[...] = np.fft.fft(signal).astype(np.complex64)


class CWT(Benchmark):
    """Spectral Methods (extension): continuous wavelet transform."""

    name = "cwt"
    dwarf = "Spectral Methods"
    presets = {"tiny": 1024, "small": 8192, "medium": 262144, "large": 1048576}
    args_template = "{phi} 32"

    def __init__(self, n: int, n_scales: int = 32, seed: int = 77):
        super().__init__()
        if n & (n - 1) or n <= 0:
            raise ValueError(f"signal length must be a power of two, got {n}")
        if n_scales < 1:
            raise ValueError(f"need at least one scale, got {n_scales}")
        self.n = int(n)
        self.n_scales = int(n_scales)
        self.scales = default_scales(self.n_scales)
        self.seed = seed
        self.signal: np.ndarray | None = None
        self.coefficients: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, phi, **overrides) -> "CWT":
        return cls(n=int(phi), **overrides)

    @classmethod
    def from_args(cls, argv: list[str], **overrides) -> "CWT":
        """Parse ``N [n_scales]``."""
        if not 1 <= len(argv) <= 2:
            raise ValueError(f"cwt: expected 'N [scales]', got {argv!r}")
        kwargs = dict(n=int(argv[0]))
        if len(argv) == 2:
            kwargs["n_scales"] = int(argv[1])
        return cls(**kwargs, **overrides)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Signal, its spectrum, and the (scales x n) coefficient plane."""
        return self.n * 4 + self.n * 8 + self.n_scales * self.n * 8

    def static_launches(self) -> StaticLaunchModel:
        n = self.n
        launches = [StaticLaunch(
            "cwt_fft", (n,),
            buffers={"signal": ("signal", 0), "signal_hat": ("hat", 0)})]
        for i, scale in enumerate(self.scales):
            launches.append(StaticLaunch(
                "cwt_scale", (n,),
                scalars={"scale": float(scale), "n": n, "dt": 1.0},
                buffers={"signal_hat": ("hat", 0), "out": ("out", i * n * 8)}))
        return StaticLaunchModel(
            source=kernels_cl.CWT_CL,
            macros={"OMEGA0": OMEGA0,
                    "PI_QUARTER_INV": float(np.pi) ** -0.25},
            buffers={
                "signal": StaticBuffer("signal", n * 4),
                "hat": StaticBuffer("hat", n * 8),
                "out": StaticBuffer("out", self.n_scales * n * 8),
            },
            launches=tuple(launches),
        )

    def host_setup(self, context: Context) -> None:
        self.context = context
        rng = np.random.default_rng(self.seed)
        # a linear chirp plus noise: classic CWT demonstration content,
        # rising from n/256 to n/32 cycles (well below Nyquist)
        t = np.arange(self.n) / self.n
        f0, f1 = self.n / 256.0, self.n / 32.0
        phase = 2 * np.pi * (f0 * t + 0.5 * (f1 - f0) * t * t)
        self.signal = (np.sin(phase)
                       + 0.2 * rng.standard_normal(self.n)).astype(np.float32)

        self.buf_signal = context.buffer_like(self.signal, MemFlags.READ_ONLY)
        self.buf_hat = context.buffer_like(np.zeros(self.n, np.complex64))
        self.buf_out = context.buffer_like(
            np.zeros((self.n_scales, self.n), np.complex64))
        program = Program(context, [
            KernelSource("cwt_fft", _fft_kernel, self._profile_fft,
                         cl_source=kernels_cl.CWT_CL),
            KernelSource("cwt_scale", _cwt_scale_kernel, self._profile_scale,
                         cl_source=kernels_cl.CWT_CL),
        ]).build()
        self.kernels = program.all_kernels()
        self._setup_done = True

    def transfer_inputs(self, queue) -> list[Event]:
        self._require_setup()
        return [queue.enqueue_write_buffer(self.buf_signal, self.signal)]

    def run_iteration(self, queue) -> list[Event]:
        """One transform: 1 FFT launch + one launch per scale."""
        self._require_setup()
        fft = self.kernels["cwt_fft"].set_args(self.buf_signal, self.buf_hat)
        events = [queue.enqueue_nd_range_kernel(fft, (self.n,))]
        plane = self.buf_out.array
        for i, scale in enumerate(self.scales):
            k = self.kernels["cwt_scale"].set_args(
                self.buf_hat, plane[i], float(scale), self.n, 1.0)
            events.append(queue.enqueue_nd_range_kernel(k, (self.n,)))
        return events

    def collect_results(self, queue) -> list[Event]:
        self._require_setup()
        self.coefficients = np.empty((self.n_scales, self.n), np.complex64)
        return [queue.enqueue_read_buffer(self.buf_out, self.coefficients)]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Direct circular-convolution reference on spot scales.

        Spot scales are restricted to the well-sampled band
        ``4 <= s <= n/8``: below it the discretised wavelet aliases,
        above it its support wraps the signal — in both regimes the
        truncated time-domain reference itself is invalid, not the
        transform.
        """
        if self.coefficients is None:
            raise ValidationError("cwt: results were never collected")
        signal = self.signal.astype(np.float64)
        valid = [i for i, s in enumerate(self.scales)
                 if 4.0 <= s <= self.n / 8]
        if not valid:
            raise ValidationError("cwt: no scale in the validatable band")
        spots = {valid[0], valid[len(valid) // 2], valid[-1]}
        for idx in spots:
            scale = float(self.scales[idx])
            wave = morlet_time(scale, self.n)
            # circular convolution with the time-reversed conjugate
            kernel = np.conj(wave[::-1])
            expected = np.fft.ifft(np.fft.fft(signal)
                                   * np.fft.fft(np.roll(kernel, self.n // 2 + 1)))
            assert_close(self.coefficients[idx], expected, 5e-2,
                         f"cwt: scale {scale:.2f} vs direct convolution")

    def power_spectrum(self) -> np.ndarray:
        """Scalogram |W|^2 (scales x time)."""
        if self.coefficients is None:
            raise ValidationError("cwt: results were never collected")
        return np.abs(self.coefficients.astype(np.complex128)) ** 2

    # ------------------------------------------------------------------
    def _profile_fft(self, nd, *args) -> KernelProfile:
        n = self.n
        stages = max(n.bit_length() - 1, 1)
        return KernelProfile(
            name="cwt_fft",
            flops=5.0 * n * stages,
            int_ops=2.0 * n * stages,
            bytes_read=n * 4.0 + n * 8.0 * (stages - 1),
            bytes_written=n * 8.0 * stages,
            working_set_bytes=float(n * 16),
            work_items=n // 2,
            seq_fraction=0.5, strided_fraction=0.3, random_fraction=0.2,
        )

    def _profile_scale(self, nd, *args) -> KernelProfile:
        n = self.n
        stages = max(n.bit_length() - 1, 1)
        return KernelProfile(
            name="cwt_scale",
            flops=(6.0 * n            # complex multiply by the spectrum
                   + 5.0 * n * stages  # inverse FFT
                   + 4.0 * n),         # wavelet spectrum evaluation
            int_ops=2.0 * n * stages,
            bytes_read=n * 8.0 * 2,
            bytes_written=n * 8.0,
            working_set_bytes=float(self.footprint_bytes()),
            work_items=n,
            seq_fraction=0.6, strided_fraction=0.25, random_fraction=0.15,
        )

    def profiles(self) -> list[KernelProfile]:
        return [
            self._profile_fft(None),
            self._profile_scale(None).scaled(self.n_scales),
        ]

    def trace_spec(self) -> trace_mod.TraceSpec:
        hat_bytes = self.n * 8
        plane_bytes = self.n_scales * self.n * 8
        return trace_mod.TraceSpec.single(
            trace_mod.seq(hat_bytes, passes=min(self.n_scales, 6),
                          budget=("floordiv", 2)),
            trace_mod.seq(plane_bytes, passes=1, offset=hat_bytes,
                          budget=("floordiv", 2)),
        )
