"""Device selection and task scheduling over the model (paper §7)."""

from .scheduler import (
    Assignment,
    Task,
    schedule_lpt,
    schedule_round_robin,
    sweep_execution_order,
)
from .selector import (
    DevicePrediction,
    Objective,
    Selection,
    predict,
    predict_all,
    select_device,
)

__all__ = [
    "Assignment",
    "DevicePrediction",
    "Objective",
    "Selection",
    "Task",
    "predict",
    "predict_all",
    "schedule_lpt",
    "schedule_round_robin",
    "select_device",
    "sweep_execution_order",
]
