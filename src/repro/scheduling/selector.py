"""Device selection under time/energy constraints (paper §7).

"The original goal of this research was to discover methods for
choosing the best device for a particular computational task, for
example to support scheduling decisions under time and/or energy
constraints. ... we plan to use these benchmarks to evaluate
scheduling approaches."

This module implements that use case over the analytic model: predict
each candidate device's kernel time and energy for a benchmark, filter
by budgets, and rank by an objective (time, energy, or energy-delay
product).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..devices.catalog import device_names, get_device
from ..devices.specs import DeviceSpec
from ..dwarfs.base import Benchmark
from ..perfmodel.characterization import static_profiles
from ..perfmodel.energy import kernel_energy
from ..perfmodel.roofline import iteration_time

#: Valid ``profile_source`` values: ``dynamic`` uses the benchmark's
#: hand-authored ``profiles()``; ``static`` derives profiles from the
#: IR via the static AIWC stage, so scheduling works from source alone.
PROFILE_SOURCES = ("dynamic", "static")


class Objective(enum.Enum):
    """Ranking criterion for device selection."""

    TIME = "time"
    ENERGY = "energy"
    EDP = "edp"  # energy-delay product


@dataclass(frozen=True)
class DevicePrediction:
    """Modeled cost of one benchmark iteration on one device."""

    device: str
    device_class: str
    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s), the combined objective."""
        return self.time_s * self.energy_j

    def objective_value(self, objective: Objective) -> float:
        """This prediction's cost under the given :class:`Objective`."""
        return {
            Objective.TIME: self.time_s,
            Objective.ENERGY: self.energy_j,
            Objective.EDP: self.edp,
        }[objective]


@dataclass(frozen=True)
class Selection:
    """Outcome of a constrained device-selection query."""

    chosen: DevicePrediction | None
    feasible: tuple[DevicePrediction, ...]
    rejected: tuple[DevicePrediction, ...]
    objective: Objective

    @property
    def satisfiable(self) -> bool:
        """Whether any device met every budget."""
        return self.chosen is not None


def _resolve_profiles(bench: Benchmark, profile_source: str) -> list:
    """The benchmark's kernel profiles from the requested source."""
    if profile_source not in PROFILE_SOURCES:
        raise ValueError(
            f"profile_source must be one of {PROFILE_SOURCES}, "
            f"got {profile_source!r}")
    if profile_source == "static":
        return static_profiles(bench)
    return bench.profiles()


def predict(bench: Benchmark, device: str | DeviceSpec,
            profile_source: str = "dynamic") -> DevicePrediction:
    """Model one device's time/energy for a benchmark iteration.

    Parameters
    ----------
    bench : Benchmark
        A sized benchmark instance (``cls.from_size(...)``); only its
        kernel profiles are consulted, nothing executes.
    device : str or DeviceSpec
        Catalog name or an already-resolved spec.
    profile_source : str
        ``"dynamic"`` (default) prices the hand-authored
        ``bench.profiles()``; ``"static"`` prices profiles derived
        from the IR by the static AIWC stage — device choice from
        source alone.

    Returns
    -------
    DevicePrediction
        Modeled kernel time (s) and energy (J) for one iteration.
    """
    spec = get_device(device) if isinstance(device, str) else device
    breakdown = iteration_time(spec, _resolve_profiles(bench, profile_source))
    energy = kernel_energy(spec, breakdown)
    return DevicePrediction(
        device=spec.name,
        device_class=spec.device_class.value,
        time_s=breakdown.total_s,
        energy_j=energy.energy_j,
    )


def predict_all(bench: Benchmark,
                devices: list[str] | None = None,
                profile_source: str = "dynamic") -> list[DevicePrediction]:
    """Predictions across a device set.

    Parameters
    ----------
    bench : Benchmark
        A sized benchmark instance.
    devices : list of str, optional
        Catalog names to consider; default the full Table 1 catalog.
    profile_source : str
        ``"dynamic"`` or ``"static"`` (see :func:`predict`).

    Returns
    -------
    list of DevicePrediction
        One prediction per device, in input (or catalog) order.
    """
    return [predict(bench, d, profile_source)
            for d in (devices or device_names())]


def select_device(
    bench: Benchmark,
    devices: list[str] | None = None,
    time_budget_s: float | None = None,
    energy_budget_j: float | None = None,
    objective: Objective | str = Objective.TIME,
    profile_source: str = "dynamic",
) -> Selection:
    """Pick the best device for a task under optional budgets.

    Devices violating a budget are excluded; among the feasible set the
    objective minimiser wins.  An unsatisfiable query returns a
    Selection with ``chosen=None`` and the full rejected list, so a
    scheduler can relax constraints deliberately.

    Parameters
    ----------
    bench : Benchmark
        A sized benchmark instance.
    devices : list of str, optional
        Candidate catalog names; default the whole catalog.
    time_budget_s, energy_budget_j : float, optional
        Hard upper bounds on modeled time / energy; ``None`` means
        unconstrained.
    objective : Objective or str
        Ranking criterion among feasible devices: ``"time"``,
        ``"energy"`` or ``"edp"``.
    profile_source : str
        ``"dynamic"`` or ``"static"`` (see :func:`predict`).

    Returns
    -------
    Selection
        The chosen device (or ``None``), the feasible set sorted by
        objective, and the rejected set.
    """
    if isinstance(objective, str):
        objective = Objective(objective)
    predictions = predict_all(bench, devices, profile_source)
    feasible, rejected = [], []
    for p in predictions:
        ok = ((time_budget_s is None or p.time_s <= time_budget_s)
              and (energy_budget_j is None or p.energy_j <= energy_budget_j))
        (feasible if ok else rejected).append(p)
    chosen = (min(feasible, key=lambda p: p.objective_value(objective))
              if feasible else None)
    return Selection(
        chosen=chosen,
        feasible=tuple(sorted(feasible,
                              key=lambda p: p.objective_value(objective))),
        rejected=tuple(rejected),
        objective=objective,
    )
