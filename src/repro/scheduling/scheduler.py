"""Multi-task scheduling over heterogeneous devices (paper §7).

Given a batch of benchmark tasks and a pool of devices, assign tasks to
devices.  Two classic policies are provided for the paper's promised
'evaluation of scheduling approaches':

* :func:`schedule_lpt` — heterogeneous longest-processing-time-first:
  tasks sorted by their best-case modeled time, each placed on the
  device whose *completion time* (current load + that device's modeled
  task time) is smallest.  A strong makespan heuristic.
* :func:`schedule_round_robin` — the baseline: tasks dealt to devices
  cyclically, ignoring affinity.

Comparing the two shows why device-aware scheduling matters on
heterogeneous pools: round-robin happily puts crc on a KNL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.catalog import get_device
from ..dwarfs.base import Benchmark
from ..perfmodel.roofline import iteration_time
from ..telemetry.metrics import default_registry
from ..telemetry.tracer import get_tracer


@dataclass(frozen=True)
class Task:
    """One schedulable unit: a benchmark instance plus a label."""

    label: str
    bench: Benchmark

    def time_on(self, device: str) -> float:
        return iteration_time(get_device(device), self.bench.profiles()).total_s


@dataclass
class Assignment:
    """A complete schedule: device -> ordered task list with times."""

    placements: dict = field(default_factory=dict)  # device -> [(label, s)]

    def add(self, device: str, label: str, time_s: float) -> None:
        self.placements.setdefault(device, []).append((label, time_s))

    def load(self, device: str) -> float:
        return sum(t for _, t in self.placements.get(device, []))

    @property
    def makespan(self) -> float:
        if not self.placements:
            return 0.0
        return max(self.load(d) for d in self.placements)

    @property
    def total_device_seconds(self) -> float:
        return sum(self.load(d) for d in self.placements)

    def rows(self) -> list[dict]:
        return [
            {"device": device,
             "tasks": ", ".join(label for label, _ in tasks),
             "busy (ms)": round(self.load(device) * 1e3, 3)}
            for device, tasks in self.placements.items()
        ]


def _record_schedule(policy: str, assignment: Assignment,
                     n_tasks: int) -> None:
    registry = default_registry()
    registry.counter("scheduler_tasks_assigned_total",
                     "Tasks placed onto devices").inc(n_tasks, policy=policy)
    registry.gauge("scheduler_makespan_seconds",
                   "Makespan of the most recent schedule").set(
        assignment.makespan, policy=policy)


def schedule_lpt(tasks: list[Task], devices: list[str]) -> Assignment:
    """Heterogeneous LPT: biggest tasks first, earliest-finish device."""
    if not devices:
        raise ValueError("no devices to schedule onto")
    with get_tracer().span("schedule_lpt", tasks=len(tasks),
                           devices=len(devices)):
        # Precompute the per-device time matrix once.
        matrix = {t.label: {d: t.time_on(d) for d in devices} for t in tasks}
        order = sorted(tasks, key=lambda t: min(matrix[t.label].values()),
                       reverse=True)
        assignment = Assignment()
        for task in order:
            best = min(
                devices,
                key=lambda d: assignment.load(d) + matrix[task.label][d],
            )
            assignment.add(best, task.label, matrix[task.label][best])
    _record_schedule("lpt", assignment, len(tasks))
    return assignment


def schedule_round_robin(tasks: list[Task], devices: list[str]) -> Assignment:
    """Affinity-blind baseline: deal tasks to devices cyclically."""
    if not devices:
        raise ValueError("no devices to schedule onto")
    with get_tracer().span("schedule_round_robin", tasks=len(tasks),
                           devices=len(devices)):
        assignment = Assignment()
        for i, task in enumerate(tasks):
            device = devices[i % len(devices)]
            assignment.add(device, task.label, task.time_on(device))
    _record_schedule("round_robin", assignment, len(tasks))
    return assignment
