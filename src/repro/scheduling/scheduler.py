"""Multi-task scheduling over heterogeneous devices (paper §7).

Given a batch of benchmark tasks and a pool of devices, assign tasks to
devices.  Two classic policies are provided for the paper's promised
'evaluation of scheduling approaches':

* :func:`schedule_lpt` — heterogeneous longest-processing-time-first:
  tasks sorted by their best-case modeled time, each placed on the
  device whose *completion time* (current load + that device's modeled
  task time) is smallest.  A strong makespan heuristic.
* :func:`schedule_round_robin` — the baseline: tasks dealt to devices
  cyclically, ignoring affinity.

Comparing the two shows why device-aware scheduling matters on
heterogeneous pools: round-robin happily puts crc on a KNL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.catalog import get_device
from ..dwarfs.base import Benchmark
from ..dwarfs.registry import get_benchmark
from ..perfmodel.roofline import iteration_time
from ..telemetry.metrics import default_registry
from ..telemetry.tracer import get_tracer


@dataclass(frozen=True)
class Task:
    """One schedulable unit: a benchmark instance plus a label."""

    label: str
    bench: Benchmark

    def time_on(self, device: str) -> float:
        """Modeled iteration time of this task on one device.

        Parameters
        ----------
        device : str
            Catalog device name (Table 1).

        Returns
        -------
        float
            Modeled seconds per iteration (the scheduler's cost unit).
        """
        return iteration_time(get_device(device), self.bench.profiles()).total_s


@dataclass
class Assignment:
    """A complete schedule: device -> ordered task list with times."""

    placements: dict = field(default_factory=dict)  # device -> [(label, s)]

    def add(self, device: str, label: str, time_s: float) -> None:
        """Append one task to a device's queue.

        Parameters
        ----------
        device : str
            Target device name.
        label : str
            The task's label.
        time_s : float
            The task's modeled time on ``device``.
        """
        self.placements.setdefault(device, []).append((label, time_s))

    def load(self, device: str) -> float:
        """Total modeled busy time queued on ``device``, in seconds."""
        return sum(t for _, t in self.placements.get(device, []))

    @property
    def makespan(self) -> float:
        """The schedule's finish time: the maximum per-device load."""
        if not self.placements:
            return 0.0
        return max(self.load(d) for d in self.placements)

    @property
    def total_device_seconds(self) -> float:
        """Sum of all device loads (the schedule's total work)."""
        return sum(self.load(d) for d in self.placements)

    def rows(self) -> list[dict]:
        """The schedule as printable table rows, one per device."""
        return [
            {"device": device,
             "tasks": ", ".join(label for label, _ in tasks),
             "busy (ms)": round(self.load(device) * 1e3, 3)}
            for device, tasks in self.placements.items()
        ]


def _record_schedule(policy: str, assignment: Assignment,
                     n_tasks: int) -> None:
    registry = default_registry()
    registry.counter("scheduler_tasks_assigned_total",
                     "Tasks placed onto devices").inc(n_tasks, policy=policy)
    registry.gauge("scheduler_makespan_seconds",
                   "Makespan of the most recent schedule").set(
        assignment.makespan, policy=policy)


def schedule_lpt(tasks: list[Task], devices: list[str]) -> Assignment:
    """Heterogeneous LPT: biggest tasks first, earliest-finish device.

    Tasks are sorted by their best-case modeled time (descending);
    each is then placed on the device minimising completion time —
    current load plus that device's modeled time for the task, so
    affinity (a serial-chain kernel preferring a high-clocked CPU)
    falls out of the cost matrix.

    Parameters
    ----------
    tasks : list of Task
        The batch to place.
    devices : list of str
        Candidate catalog device names; must be non-empty.

    Returns
    -------
    Assignment
        Per-device ordered task lists with modeled times; compare its
        ``makespan`` against :func:`schedule_round_robin` to see the
        value of device-aware placement.

    Raises
    ------
    ValueError
        If ``devices`` is empty.
    """
    if not devices:
        raise ValueError("no devices to schedule onto")
    with get_tracer().span("schedule_lpt", tasks=len(tasks),
                           devices=len(devices)):
        # Precompute the per-device time matrix once.
        matrix = {t.label: {d: t.time_on(d) for d in devices} for t in tasks}
        order = sorted(tasks, key=lambda t: min(matrix[t.label].values()),
                       reverse=True)
        assignment = Assignment()
        for task in order:
            best = min(
                devices,
                key=lambda d: assignment.load(d) + matrix[task.label][d],
            )
            assignment.add(best, task.label, matrix[task.label][best])
    _record_schedule("lpt", assignment, len(tasks))
    return assignment


def sweep_execution_order(configs: list) -> list[int]:
    """Submission order for sweep cells: longest modeled cell first.

    The same longest-processing-time-first idea as
    :func:`schedule_lpt`, applied to the harness's parallel sweep
    engine: when :func:`repro.harness.sweep.run_sweep` feeds a process
    pool, starting the most expensive cells first minimises the
    makespan tail (a cheap cell finishing last costs nothing; an
    expensive one started last idles every other worker).

    Parameters
    ----------
    configs : list of repro.harness.runner.RunConfig
        The pending sweep cells.  Each cell's cost proxy is the
        modeled iteration time of its benchmark/size on its device;
        cells whose cost cannot be modeled (unknown benchmark during a
        partial registry, say) sort last rather than raising.

    Returns
    -------
    list of int
        Indices into ``configs``, most expensive cell first.  Ties
        keep input order, so the ordering is deterministic.
    """
    costs = []
    for i, config in enumerate(configs):
        try:
            bench = get_benchmark(config.benchmark).from_size(config.size)
            cost = iteration_time(get_device(config.device),
                                  bench.profiles()).total_s
        except Exception:
            cost = -1.0
        costs.append((i, cost))
    return [i for i, _ in sorted(costs, key=lambda p: (-p[1], p[0]))]


def schedule_round_robin(tasks: list[Task], devices: list[str]) -> Assignment:
    """Affinity-blind baseline: deal tasks to devices cyclically.

    Parameters
    ----------
    tasks : list of Task
        The batch to place, in input order.
    devices : list of str
        Candidate catalog device names; must be non-empty.

    Returns
    -------
    Assignment
        Task ``i`` lands on ``devices[i % len(devices)]`` regardless
        of modeled cost — the strawman that happily puts crc on a KNL.

    Raises
    ------
    ValueError
        If ``devices`` is empty.
    """
    if not devices:
        raise ValueError("no devices to schedule onto")
    with get_tracer().span("schedule_round_robin", tasks=len(tasks),
                           devices=len(devices)):
        assignment = Assignment()
        for i, task in enumerate(tasks):
            device = devices[i % len(devices)]
            assignment.add(device, task.label, task.time_on(device))
    _record_schedule("round_robin", assignment, len(tasks))
    return assignment
