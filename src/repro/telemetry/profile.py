"""Self-profiling: phase attribution, hotspots, folded stacks, memory.

The paper's methodology (§4.3) is built on knowing where time goes;
this module turns that discipline on the harness itself.  It layers
three instruments over the span :class:`~repro.telemetry.tracer.Tracer`:

* **phase attribution** — every instrumented cost center tags its spans
  with a ``phase`` attribute (:data:`PHASE_MEASURE` for the runner's
  measurement loops, :data:`PHASE_CACHE_SIM` for cache-simulator trace
  replays, :data:`PHASE_ABSINT` for the abstract interpreter,
  :data:`PHASE_CACHE_IO` for sweep-cache (de)serialisation,
  :data:`PHASE_SWEEP` for the sweep engine itself).  Child spans
  inherit the nearest ancestor's phase, so :func:`phase_summary`
  attributes *every* nanosecond of a traced run to exactly one phase
  (exclusive self time) and reports the fraction of wall time covered;
* **hotspots** — :class:`ProfileSession` wraps a run in ``cProfile``
  (deterministic, so repeated profiles of the seeded harness agree) and
  renders a top-N hotspot table;
* **memory** — under ``tracemalloc`` the runner attributes the peak
  allocated bytes of each measurement cell to its ``run_benchmark``
  span (``peak_alloc_bytes``), giving per-cell allocation attribution.

:func:`folded_stacks` renders the span tree in the collapsed-stack
format flamegraph tools (``flamegraph.pl``, speedscope) consume, and
:func:`summarize_trace_events` answers "what is in this trace?" for a
Chrome/Perfetto JSON without opening a viewer.

Like the rest of :mod:`repro.telemetry`, nothing here imports the rest
of ``repro`` — every layer may use it.
"""

from __future__ import annotations

import cProfile
import pstats
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path

from .tracer import Span, Tracer, get_tracer, set_tracer

#: The runner's measurement loops (functional execution + sampling).
PHASE_MEASURE = "measure"
#: Cache/TLB simulator trace replays (``repro.cache``).
PHASE_CACHE_SIM = "cache_sim"
#: Abstract interpretation of kernel IR (``repro.analysis.absint``).
PHASE_ABSINT = "absint"
#: Sweep-cache (de)serialisation (``SweepCache.get``/``put``).
PHASE_CACHE_IO = "cache_io"
#: The sweep engine itself: scheduling, worker IPC, merging.
PHASE_SWEEP = "sweep"
#: Spans (or wall time) with no phased ancestor.
PHASE_OTHER = "other"

#: Every named phase the harness instruments, in reporting order.
KNOWN_PHASES = (PHASE_MEASURE, PHASE_CACHE_SIM, PHASE_ABSINT,
                PHASE_CACHE_IO, PHASE_SWEEP, PHASE_OTHER)


def _as_dicts(spans) -> list[dict]:
    """Normalise finished spans (Span objects or dicts) to dicts."""
    out = []
    for span in spans:
        payload = span if isinstance(span, dict) else span.to_dict()
        if payload.get("end_ns") is not None:
            out.append(payload)
    return out


# ----------------------------------------------------------------------
# Phase attribution
# ----------------------------------------------------------------------
@dataclass
class PhaseStat:
    """One phase's share of a traced run."""

    phase: str
    #: Spans that introduce the phase (own ``phase`` attribute, or a
    #: root span for :data:`PHASE_OTHER`).
    count: int = 0
    #: Inclusive seconds of the introducing spans (nested phases too).
    total_s: float = 0.0
    #: Exclusive seconds attributed to the phase; self times sum to the
    #: traced wall time (up to parallel overlap).
    self_s: float = 0.0

    def to_dict(self) -> dict:
        return {"phase": self.phase, "count": self.count,
                "total_s": self.total_s, "self_s": self.self_s}


@dataclass
class PhaseSummary:
    """Where a traced run's wall time went, phase by phase."""

    wall_s: float
    stats: list[PhaseStat] = field(default_factory=list)
    #: Wall time not covered by any span (gaps between/outside spans).
    untracked_s: float = 0.0

    @property
    def attributed_s(self) -> float:
        """Exclusive seconds attributed to *named* phases (not other)."""
        return sum(s.self_s for s in self.stats if s.phase != PHASE_OTHER)

    @property
    def attributed_fraction(self) -> float:
        """Named-phase self time over wall time.

        Can exceed 1.0 when worker spans recorded in parallel overlap
        the parent's wall clock — more CPU seconds than wall seconds.
        """
        return self.attributed_s / self.wall_s if self.wall_s > 0 else 0.0

    def stat(self, phase: str) -> PhaseStat | None:
        """The entry for one phase, or ``None`` if it never appeared."""
        for s in self.stats:
            if s.phase == phase:
                return s
        return None

    def to_dict(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "untracked_s": self.untracked_s,
            "attributed_s": self.attributed_s,
            "attributed_fraction": self.attributed_fraction,
            "phases": [s.to_dict() for s in self.stats],
        }

    def rows(self) -> list[dict]:
        """Render-ready rows, largest self time first."""
        rows = []
        for s in self.stats:
            pct = 100.0 * s.self_s / self.wall_s if self.wall_s > 0 else 0.0
            rows.append({
                "phase": s.phase, "spans": s.count,
                "total (s)": round(s.total_s, 6),
                "self (s)": round(s.self_s, 6),
                "self %": round(pct, 1),
            })
        return rows


def phase_summary(spans, wall_s: float | None = None) -> PhaseSummary:
    """Attribute a span set's wall time to named phases.

    Parameters
    ----------
    spans : iterable of Span or dict
        Finished spans (open spans are skipped).  Parent/child links
        must be internally consistent — exactly what one tracer (plus
        grafted worker spans) produces.
    wall_s : float, optional
        The wall-clock denominator.  Defaults to the extent of the
        span set (earliest start to latest end).
    """
    payloads = _as_dicts(spans)
    if not payloads:
        return PhaseSummary(wall_s=wall_s or 0.0, untracked_s=wall_s or 0.0)

    by_id = {d["span_id"]: d for d in payloads}
    children_ns: dict[int, int] = {}
    roots_ns = 0
    for d in payloads:
        dur = d["end_ns"] - d["start_ns"]
        parent = d.get("parent_id")
        if parent in by_id:
            children_ns[parent] = children_ns.get(parent, 0) + dur
        else:
            roots_ns += dur

    effective: dict[int, str] = {}

    def _phase_of(span_id: int) -> str:
        cached = effective.get(span_id)
        if cached is not None:
            return cached
        d = by_id[span_id]
        own = d.get("attributes", {}).get("phase")
        if own is None:
            parent = d.get("parent_id")
            own = _phase_of(parent) if parent in by_id else PHASE_OTHER
        effective[span_id] = own
        return own

    stats: dict[str, PhaseStat] = {}
    for d in payloads:
        phase = _phase_of(d["span_id"])
        stat = stats.get(phase)
        if stat is None:
            stat = stats[phase] = PhaseStat(phase=phase)
        dur_ns = d["end_ns"] - d["start_ns"]
        self_ns = max(0, dur_ns - children_ns.get(d["span_id"], 0))
        stat.self_s += self_ns * 1e-9
        parent = d.get("parent_id")
        parent_phase = _phase_of(parent) if parent in by_id else None
        introduces = (d.get("attributes", {}).get("phase") is not None
                      and parent_phase != phase) or parent not in by_id
        if introduces:
            stat.count += 1
            stat.total_s += dur_ns * 1e-9

    if wall_s is None:
        start = min(d["start_ns"] for d in payloads)
        end = max(d["end_ns"] for d in payloads)
        wall_s = (end - start) * 1e-9
    untracked_s = max(0.0, wall_s - roots_ns * 1e-9)
    ordered = sorted(stats.values(), key=lambda s: (-s.self_s, s.phase))
    return PhaseSummary(wall_s=wall_s, stats=ordered, untracked_s=untracked_s)


# ----------------------------------------------------------------------
# Folded stacks (flamegraph input)
# ----------------------------------------------------------------------
def folded_stacks(spans) -> str:
    """The span tree in collapsed-stack format, one line per path.

    Each line is ``root;child;leaf <self-microseconds>``, aggregated
    over spans sharing a name path and sorted lexicographically, so the
    output is deterministic for a deterministic trace and loads
    directly into ``flamegraph.pl`` or https://speedscope.app.
    Zero-self-time paths are dropped.
    """
    payloads = _as_dicts(spans)
    by_id = {d["span_id"]: d for d in payloads}
    children_ns: dict[int, int] = {}
    for d in payloads:
        parent = d.get("parent_id")
        if parent in by_id:
            dur = d["end_ns"] - d["start_ns"]
            children_ns[parent] = children_ns.get(parent, 0) + dur

    paths: dict[str, int] = {}

    def _path(d: dict) -> str:
        names = [d["name"]]
        seen = {d["span_id"]}
        parent = d.get("parent_id")
        while parent in by_id and parent not in seen:
            seen.add(parent)
            names.append(by_id[parent]["name"])
            parent = by_id[parent].get("parent_id")
        return ";".join(reversed(names))

    for d in payloads:
        dur_ns = d["end_ns"] - d["start_ns"]
        self_us = max(0, dur_ns - children_ns.get(d["span_id"], 0)) // 1000
        if self_us:
            path = _path(d)
            paths[path] = paths.get(path, 0) + self_us
    return "\n".join(f"{path} {value}"
                     for path, value in sorted(paths.items()))


# ----------------------------------------------------------------------
# Hotspots + memory + the session that collects everything
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Hotspot:
    """One function's cost in the profiled run."""

    function: str
    calls: int
    tottime_s: float
    cumtime_s: float

    def to_dict(self) -> dict:
        return {"function": self.function, "calls": self.calls,
                "tottime_s": self.tottime_s, "cumtime_s": self.cumtime_s}


@dataclass
class MemoryStats:
    """Peak allocation figures from ``tracemalloc``."""

    peak_bytes: int
    #: ``(cell label, peak bytes)`` per measurement cell, from the
    #: ``peak_alloc_bytes`` span attribute the runner records.
    cells: list[tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"peak_bytes": self.peak_bytes,
                "cells": [{"cell": c, "peak_bytes": b}
                          for c, b in self.cells]}


def _hotspots_from_profile(profile: cProfile.Profile,
                           top: int) -> list[Hotspot]:
    """Top-N functions by cumulative time from a finished cProfile."""
    stats = pstats.Stats(profile)
    rows = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        where = "built-in" if filename.startswith(("~", "<")) \
            else f"{Path(filename).name}:{line}"
        rows.append(Hotspot(function=f"{where}({func})", calls=int(nc),
                            tottime_s=float(tt), cumtime_s=float(ct)))
    rows.sort(key=lambda h: (-h.cumtime_s, -h.tottime_s, h.function))
    return rows[:top]


def _memory_cells(spans) -> list[tuple[str, int]]:
    """Per-cell peak allocations recorded as span attributes."""
    cells = []
    for d in _as_dicts(spans):
        attrs = d.get("attributes", {})
        peak = attrs.get("peak_alloc_bytes")
        if peak is None:
            continue
        label = "/".join(str(attrs[k])
                         for k in ("benchmark", "size", "device")
                         if k in attrs) or d["name"]
        cells.append((label, int(peak)))
    cells.sort(key=lambda c: (-c[1], c[0]))
    return cells


def _render_table(rows: list[dict], title: str) -> str:
    """Minimal fixed-width table (telemetry cannot import the harness)."""
    if not rows:
        return f"{title}\n(no data)"
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), *(len(str(r[h])) for r in rows))
              for h in headers}
    lines = [title,
             "  ".join(str(h).ljust(widths[h]) for h in headers),
             "  ".join("-" * widths[h] for h in headers)]
    for r in rows:
        lines.append("  ".join(str(r[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


@dataclass
class ProfileReport:
    """Everything one :class:`ProfileSession` collected."""

    phases: PhaseSummary
    hotspots: list[Hotspot]
    folded: str
    span_count: int
    trace_id: str
    memory: MemoryStats | None = None

    def to_json(self) -> dict:
        """The report as a JSON-ready dict (``--format json``)."""
        return {
            "trace_id": self.trace_id,
            "span_count": self.span_count,
            "phase": self.phases.to_dict(),
            "hotspots": [h.to_dict() for h in self.hotspots],
            "memory": self.memory.to_dict() if self.memory else None,
        }

    def to_folded(self) -> str:
        """The folded-stack text (``--format folded``)."""
        return self.folded

    def to_table(self) -> str:
        """The human-readable report (``--format table``)."""
        pct = 100.0 * self.phases.attributed_fraction
        parts = [_render_table(
            self.phases.rows(),
            f"Phases ({self.span_count} spans, wall "
            f"{self.phases.wall_s:.3f} s, {pct:.1f}% attributed to "
            f"named phases)")]
        hot_rows = [{
            "function": h.function, "calls": h.calls,
            "tottime (s)": round(h.tottime_s, 4),
            "cumtime (s)": round(h.cumtime_s, 4),
        } for h in self.hotspots]
        parts.append(_render_table(
            hot_rows, f"Hotspots (top {len(hot_rows)} by cumulative time)"))
        if self.memory is not None:
            mem_rows = [{"cell": c, "peak KiB": round(b / 1024, 1)}
                        for c, b in self.memory.cells[:10]]
            parts.append(_render_table(
                mem_rows,
                f"Allocation peaks (overall "
                f"{self.memory.peak_bytes / 1024:.1f} KiB)"))
        return "\n\n".join(parts)


class ProfileSession:
    """Profile a block of harness work: spans + cProfile + tracemalloc.

    Usage::

        with ProfileSession(memory=True) as session:
            run_sweep(configs, jobs=4)
        print(session.report().to_table())

    The session installs an enabled tracer (unless the global tracer is
    already enabled, in which case it piggybacks on it so ``--trace``
    and ``--profile`` compose), opens a root ``profile`` span so wall
    time has a well-defined denominator, and runs the block under
    ``cProfile`` — deterministic profiling, so two profiles of the
    seeded harness rank the same hotspots.  ``memory=True`` adds
    ``tracemalloc``; the runner then attributes each cell's peak
    allocated bytes to its span.

    A disabled session (``enabled=False``) is a strict no-op: no tracer
    installed, no profiler started, zero spans recorded — the
    instrumentation's zero-overhead path end to end.
    """

    def __init__(self, enabled: bool = True, memory: bool = False,
                 tracer: Tracer | None = None):
        self.enabled = enabled
        self.memory = memory
        self.tracer = tracer
        self._installed_tracer = False
        self._started_tracemalloc = False
        self._profile: cProfile.Profile | None = None
        self._previous: Tracer | None = None
        self._root_cm = None
        self._root: Span | None = None
        self._peak_bytes: int | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProfileSession":
        if not self.enabled:
            return self
        if self.tracer is None:
            current = get_tracer()
            if current.enabled:
                self.tracer = current
            else:
                self.tracer = Tracer(enabled=True)
                self._previous = set_tracer(self.tracer)
                self._installed_tracer = True
        else:
            self._previous = set_tracer(self.tracer)
            self._installed_tracer = True
        # instruments start BEFORE the root span opens: session setup
        # (tracemalloc bookkeeping, cProfile init) must not count
        # against the profiled wall time
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._profile = cProfile.Profile()
        self._profile.enable()
        self._root_cm = self.tracer.span("profile")
        self._root = self._root_cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self.enabled:
            return False
        if self._root_cm is not None:
            self._root_cm.__exit__(exc_type, exc, tb)
        if self._profile is not None:
            self._profile.disable()
        if self.memory and tracemalloc.is_tracing():
            self._peak_bytes = tracemalloc.get_traced_memory()[1]
            if self._started_tracemalloc:
                tracemalloc.stop()
        if self._installed_tracer:
            set_tracer(self._previous)
        return False

    # ------------------------------------------------------------------
    @property
    def wall_s(self) -> float | None:
        """Duration of the root ``profile`` span, once closed."""
        if self._root is None or not self._root.ended:
            return None
        return self._root.duration_s

    def report(self, top: int = 20) -> ProfileReport:
        """Build the :class:`ProfileReport` for the finished session."""
        if not self.enabled or self.tracer is None:
            return ProfileReport(
                phases=PhaseSummary(wall_s=0.0), hotspots=[], folded="",
                span_count=0, trace_id="", memory=None)
        spans = self.tracer.finished
        memory = None
        if self._peak_bytes is not None:
            memory = MemoryStats(peak_bytes=self._peak_bytes,
                                 cells=_memory_cells(spans))
        return ProfileReport(
            phases=phase_summary(spans, wall_s=self.wall_s),
            hotspots=(_hotspots_from_profile(self._profile, top)
                      if self._profile is not None else []),
            folded=folded_stacks(spans),
            span_count=len(spans),
            trace_id=self.tracer.trace_id,
            memory=memory,
        )


# ----------------------------------------------------------------------
# Trace summaries (``repro trace --summary``)
# ----------------------------------------------------------------------
@dataclass
class TraceNameStat:
    """Aggregate for one slice/span name inside a trace."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0


@dataclass
class TraceSummary:
    """What a Chrome/Perfetto trace contains, without the viewer."""

    span_count: int
    wall_s: float
    names: list[TraceNameStat] = field(default_factory=list)
    top: int = 10

    @property
    def total_s(self) -> float:
        """Sum of every slice's duration (inclusive)."""
        return sum(n.total_s for n in self.names)

    @property
    def self_total_s(self) -> float:
        """Sum of every slice's exclusive time."""
        return sum(n.self_s for n in self.names)

    def to_dict(self) -> dict:
        return {
            "span_count": self.span_count,
            "wall_s": self.wall_s,
            "total_s": self.total_s,
            "self_total_s": self.self_total_s,
            "names": [{"name": n.name, "count": n.count,
                       "total_s": n.total_s, "self_s": n.self_s}
                      for n in self.names],
        }

    def render(self) -> str:
        """Human-readable summary table."""
        header = (f"{self.span_count} spans/slices, wall {self.wall_s:.3f} s,"
                  f" total {self.total_s:.3f} s"
                  f" (self {self.self_total_s:.3f} s)")
        rows = [{
            "name": n.name, "count": n.count,
            "total (s)": round(n.total_s, 6),
            "self (s)": round(n.self_s, 6),
        } for n in self.names[:self.top]]
        return _render_table(rows, header + f"\nTop {min(self.top, len(rows))} by total duration")


def summarize_trace_events(events: list[dict], top: int = 10) -> TraceSummary:
    """Summarise Trace Event Format events (the ``traceEvents`` list).

    Handles duration slices (``ph: "X"``) and async begin/end pairs
    (``ph: "b"``/``"e"``, the shape harness spans are exported as).
    Self time is exact when the span events carry ``span_id`` /
    ``parent_id`` args (this exporter's output) and falls back to
    timestamp containment per ``(pid, tid)`` track otherwise.
    """
    intervals: list[dict] = []
    open_async: dict[tuple, dict] = {}
    for e in events:
        ph = e.get("ph")
        if ph == "X":
            intervals.append({
                "name": e.get("name", "?"), "pid": e.get("pid"),
                "tid": e.get("tid"), "start": e.get("ts", 0.0),
                "end": e.get("ts", 0.0) + e.get("dur", 0.0),
                "span_id": None, "parent_id": None,
            })
        elif ph == "b":
            key = (e.get("pid"), e.get("cat"), e.get("id"), e.get("name"))
            args = e.get("args", {}) or {}
            open_async[key] = {
                "name": e.get("name", "?"), "pid": e.get("pid"),
                "tid": e.get("tid"), "start": e.get("ts", 0.0),
                "span_id": args.get("span_id"),
                "parent_id": args.get("parent_id"),
            }
        elif ph == "e":
            key = (e.get("pid"), e.get("cat"), e.get("id"), e.get("name"))
            begun = open_async.pop(key, None)
            if begun is not None:
                begun["end"] = e.get("ts", 0.0)
                intervals.append(begun)
    if not intervals:
        return TraceSummary(span_count=0, wall_s=0.0, top=top)

    # exclusive time: exact parent/child where ids exist ...
    children_us: dict[tuple, float] = {}
    with_ids = {(iv["pid"], iv["span_id"]): iv for iv in intervals
                if iv["span_id"] is not None}
    for iv in intervals:
        if iv["span_id"] is None or iv["parent_id"] is None:
            continue
        parent_key = (iv["pid"], iv["parent_id"])
        if parent_key in with_ids:
            children_us[parent_key] = (children_us.get(parent_key, 0.0)
                                       + iv["end"] - iv["start"])
    # ... containment per (pid, tid) track for plain slices
    plain: dict[tuple, list[dict]] = {}
    for iv in intervals:
        if iv["span_id"] is None:
            plain.setdefault((iv["pid"], iv["tid"]), []).append(iv)
    contained_us: dict[int, float] = {}
    for track in plain.values():
        track.sort(key=lambda iv: (iv["start"], -iv["end"]))
        stack: list[dict] = []
        for iv in track:
            while stack and stack[-1]["end"] <= iv["start"]:
                stack.pop()
            if stack:
                contained_us[id(stack[-1])] = (
                    contained_us.get(id(stack[-1]), 0.0)
                    + iv["end"] - iv["start"])
            stack.append(iv)

    stats: dict[str, TraceNameStat] = {}
    for iv in intervals:
        stat = stats.get(iv["name"])
        if stat is None:
            stat = stats[iv["name"]] = TraceNameStat(name=iv["name"])
        dur_us = iv["end"] - iv["start"]
        if iv["span_id"] is not None:
            child_us = children_us.get((iv["pid"], iv["span_id"]), 0.0)
        else:
            child_us = contained_us.get(id(iv), 0.0)
        stat.count += 1
        stat.total_s += dur_us * 1e-6
        stat.self_s += max(0.0, dur_us - child_us) * 1e-6

    wall_us = (max(iv["end"] for iv in intervals)
               - min(iv["start"] for iv in intervals))
    ordered = sorted(stats.values(), key=lambda s: (-s.total_s, s.name))
    return TraceSummary(span_count=len(intervals), wall_s=wall_us * 1e-6,
                        names=ordered, top=top)
