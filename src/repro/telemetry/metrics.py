"""Metrics registry with Prometheus text-format exposition.

Counters, gauges and histograms-with-quantiles, registered by name in a
:class:`MetricsRegistry` and incremented from the simulated runtime
(commands enqueued, bytes moved), the harness runner (runs, samples,
loop iterations, validation failures) and the scheduler.  ``expose()``
renders the whole registry in the Prometheus text exposition format
(``# HELP`` / ``# TYPE`` comments followed by sample lines), so the
output drops straight into ``promtool`` or a scrape endpoint.

Instruments support optional labels supplied at observation time::

    reg = default_registry()
    reg.counter("ocl_commands_enqueued_total").inc(command="ndrange_kernel")
    reg.histogram("harness_run_mean_seconds").observe(0.004, benchmark="fft")

Histograms are exposed as Prometheus *summaries* (quantile label per
series plus ``_sum``/``_count``), matching LibSciBench's habit of
reporting medians and tail quantiles rather than fixed buckets.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left, insort
from contextlib import contextmanager

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Quantiles exposed for every histogram family.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

#: Default bucket boundaries (seconds) for :class:`BucketHistogram` —
#: the Prometheus client default ladder, which spans the sub-ms model
#: evaluations through the multi-second functional cells the sweep sees.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict) -> tuple:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_labels(key: tuple, extra: tuple = ()) -> str:
    pairs = [f'{k}="{_escape_label_value(v)}"' for k, v in (*key, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


class MetricFamily:
    """Base: a named instrument holding one series per label set."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help

    def _series(self):
        """Yield ``(label_key, rendered sample lines)`` pairs."""
        raise NotImplementedError

    def expose(self) -> str:
        """This family in Prometheus text exposition format."""
        lines = [
            f"# HELP {self.name} {self.help or self.name}",
            f"# TYPE {self.name} {self.type_name}",
        ]
        for _, sample_lines in sorted(self._series()):
            lines.extend(sample_lines)
        return "\n".join(lines)


class Counter(MetricFamily):
    """Monotonically increasing count."""

    type_name = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Increase one label set's count by ``amount`` (>= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """One label set's current count (0.0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def _series(self):
        for key, value in self._values.items():
            yield key, [f"{self.name}{_format_labels(key)} {_format_value(value)}"]


class Gauge(MetricFamily):
    """A value that can go up and down."""

    type_name = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        """Set one label set's value."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (possibly negative) to one label set."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from one label set."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """One label set's current value (0.0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    @contextmanager
    def track_inprogress(self, **labels):
        """Hold the gauge one higher while the ``with`` body runs.

        The decrement is unconditional (``finally``), so an exception
        inside the body cannot leak a phantom in-flight entry — which
        is exactly the failure mode an in-progress gauge exists to
        rule out.
        """
        self.inc(**labels)
        try:
            yield self
        finally:
            self.dec(**labels)

    def _series(self):
        for key, value in self._values.items():
            yield key, [f"{self.name}{_format_labels(key)} {_format_value(value)}"]


class Histogram(MetricFamily):
    """Observation distribution exposed as a summary with quantiles.

    Observations are kept sorted per label set, so quantiles are exact
    (the harness records at most tens of thousands of samples per run —
    LibSciBench keeps every sample too, for its R analysis).
    """

    type_name = "summary"

    def __init__(self, name: str, help: str = "",
                 quantiles: tuple = DEFAULT_QUANTILES):
        super().__init__(name, help)
        self.quantiles = tuple(quantiles)
        self._observations: dict[tuple, list[float]] = {}
        self._sums: dict[tuple, float] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into a label set's series."""
        key = _label_key(labels)
        insort(self._observations.setdefault(key, []), float(value))
        self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def count(self, **labels) -> int:
        """Number of observations in one label set's series."""
        return len(self._observations.get(_label_key(labels), ()))

    def sum(self, **labels) -> float:
        """Sum of observations in one label set's series."""
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels) -> float:
        """Exact q-quantile (nearest-rank interpolation) of one series."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        obs = self._observations.get(_label_key(labels))
        if not obs:
            raise ValueError(f"no observations for {self.name}{labels}")
        if len(obs) == 1:
            return obs[0]
        pos = q * (len(obs) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(obs) - 1)
        frac = pos - lo
        return obs[lo] * (1 - frac) + obs[hi] * frac

    def _series(self):
        for key, obs in self._observations.items():
            lines = []
            for q in self.quantiles:
                labels = _format_labels(key, (("quantile", str(q)),))
                value = self.quantile(q, **dict(key))
                lines.append(f"{self.name}{labels} {_format_value(value)}")
            lines.append(
                f"{self.name}_sum{_format_labels(key)} "
                f"{_format_value(self._sums.get(key, 0.0))}"
            )
            lines.append(f"{self.name}_count{_format_labels(key)} {len(obs)}")
            yield key, lines


class BucketHistogram(MetricFamily):
    """A true Prometheus *histogram*: bucketed counts, not quantiles.

    Where :class:`Histogram` keeps every observation and exposes exact
    quantiles (a summary), this family folds each observation into a
    fixed bucket ladder in O(log buckets) and exposes the cumulative
    ``_bucket{le="..."}`` series the Prometheus histogram type
    requires — constant memory, mergeable across processes, and
    aggregable across scrape targets.  The sweep records every cell's
    wall-clock measurement duration here
    (``harness_cell_duration_seconds``).
    """

    type_name = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name} buckets must be finite "
                             "(+Inf is implicit)")
        self.buckets = bounds
        # per label set: one count per bucket plus the +Inf overflow slot
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into a label set's bucket ladder."""
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
        counts[bisect_left(self.buckets, float(value))] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def count(self, **labels) -> int:
        """Total observations in one label set's series."""
        return sum(self._counts.get(_label_key(labels), ()))

    def sum(self, **labels) -> float:
        """Sum of observations in one label set's series."""
        return self._sums.get(_label_key(labels), 0.0)

    @property
    def total_count(self) -> int:
        """Observations across every label set."""
        return sum(sum(counts) for counts in self._counts.values())

    def bucket_counts(self, **labels) -> dict[float, int]:
        """Cumulative count per upper bound (``math.inf`` last)."""
        counts = self._counts.get(_label_key(labels),
                                  [0] * (len(self.buckets) + 1))
        out: dict[float, int] = {}
        running = 0
        for bound, n in zip((*self.buckets, math.inf), counts):
            running += n
            out[bound] = running
        return out

    def _series(self):
        for key, counts in self._counts.items():
            lines = []
            running = 0
            for bound, n in zip(self.buckets, counts):
                running += n
                le = _format_labels(key, (("le", _format_value(bound)),))
                lines.append(f"{self.name}_bucket{le} {running}")
            inf = _format_labels(key, (("le", "+Inf"),))
            total = running + counts[-1]
            lines.append(f"{self.name}_bucket{inf} {total}")
            lines.append(
                f"{self.name}_sum{_format_labels(key)} "
                f"{_format_value(self._sums.get(key, 0.0))}"
            )
            lines.append(f"{self.name}_count{_format_labels(key)} {total}")
            yield key, lines


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors."""

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        family = self._families.get(name)
        if family is None:
            family = cls(name, help, **kwargs)
            self._families[name] = family
        elif not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already registered as {family.type_name}, "
                f"not {cls.type_name}"
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the :class:`Counter` named ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the :class:`Gauge` named ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  quantiles: tuple = DEFAULT_QUANTILES) -> Histogram:
        """Get or create the :class:`Histogram` named ``name``."""
        return self._get_or_create(Histogram, name, help, quantiles=quantiles)

    def bucket_histogram(self, name: str, help: str = "",
                         buckets: tuple = DEFAULT_BUCKETS) -> BucketHistogram:
        """Get or create the :class:`BucketHistogram` named ``name``."""
        return self._get_or_create(BucketHistogram, name, help,
                                   buckets=buckets)

    # ------------------------------------------------------------------
    @property
    def families(self) -> dict[str, MetricFamily]:
        """A copy of the name -> instrument map."""
        return dict(self._families)

    def expose(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        blocks = [f.expose() for _, f in sorted(self._families.items())]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def reset(self) -> None:
        """Zero every series but keep the registered families.

        Cached references handed out by the accessors stay valid, which
        matters because instrumented modules hold on to their counters.
        """
        for family in self._families.values():
            for attr in ("_values", "_observations", "_sums", "_counts"):
                store = getattr(family, attr, None)
                if store is not None:
                    store.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every series as a JSON-safe dict (for cross-process merging).

        The parallel sweep engine resets the registry in each worker,
        runs the cell, snapshots, and ships the snapshot back so the
        parent can :meth:`merge_snapshot` it — without this, counters
        incremented in child processes would silently vanish.
        """
        families = {}
        for name, family in self._families.items():
            entry = {"type": family.type_name, "help": family.help}
            if isinstance(family, Histogram):
                entry["series"] = [
                    [list(key), list(obs), family._sums.get(key, 0.0)]
                    for key, obs in family._observations.items()
                ]
            elif isinstance(family, BucketHistogram):
                entry["buckets"] = list(family.buckets)
                entry["series"] = [
                    [list(key), list(counts), family._sums.get(key, 0.0)]
                    for key, counts in family._counts.items()
                ]
            else:
                entry["series"] = [
                    [list(key), value]
                    for key, value in family._values.items()
                ]
            families[name] = entry
        return families

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, histograms re-observe every sample, gauges take
        the snapshot's value (last-writer-wins, matching Prometheus
        gauge semantics).
        """
        for name, entry in snapshot.items():
            if entry["type"] == "counter":
                family = self.counter(name, entry.get("help", ""))
                for key, value in entry["series"]:
                    family.inc(value, **{k: v for k, v in key})
            elif entry["type"] == "gauge":
                family = self.gauge(name, entry.get("help", ""))
                for key, value in entry["series"]:
                    family.set(value, **{k: v for k, v in key})
            elif entry["type"] == "summary":
                family = self.histogram(name, entry.get("help", ""))
                for key, observations, _ in entry["series"]:
                    labels = {k: v for k, v in key}
                    for value in observations:
                        family.observe(value, **labels)
            elif entry["type"] == "histogram":
                family = self.bucket_histogram(
                    name, entry.get("help", ""),
                    buckets=tuple(entry.get("buckets", DEFAULT_BUCKETS)))
                if list(family.buckets) != [
                        float(b) for b in entry.get("buckets", family.buckets)]:
                    raise ValueError(
                        f"histogram {name!r} bucket ladders differ; "
                        "cannot merge counts")
                for key, counts, total in entry["series"]:
                    labels = tuple((k, v) for k, v in key)
                    store = family._counts.setdefault(
                        labels, [0] * (len(family.buckets) + 1))
                    for i, n in enumerate(counts):
                        store[i] += int(n)
                    family._sums[labels] = (
                        family._sums.get(labels, 0.0) + float(total))

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        return f"<MetricsRegistry: {len(self._families)} families>"


#: Process-global registry all built-in instrumentation reports to.
_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry built-in instrumentation reports to."""
    return _default_registry
