"""Chrome trace-event / Perfetto JSON export.

Maps the simulated-OpenCL world onto the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* each **device** becomes a process (``pid``) named after it,
* each **command queue** becomes a thread (``tid``) of its device,
* every completed command is a duration slice (``ph: "X"``) spanning
  START to END on the device clock,
* the QUEUED to START interval of each command is an async slice
  (``ph: "b"``/``"e"``, category ``queue_delay``) — the runtime
  overhead the paper isolates in its per-region breakdowns,
* kernel energy (J) and modeled occupancy are emitted as counter
  tracks (``ph: "C"``),
* harness :class:`~repro.telemetry.tracer.Span` records become async
  slices on a synthetic "harness" process (the host wall clock is a
  different time base from the device clock, so spans get their own
  process rather than pretending to share a timeline).

Timestamps are microseconds, as the format requires; the device clock's
nanoseconds are divided down and never truncated to zero-length slices
(Perfetto drops zero-duration X events from some views).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from .hooks import GLOBAL_EVENT_BUS, EventBus
from .tracer import Span, Tracer

#: Command categories for slice colouring/filtering in the viewer.
_CATEGORY = {
    "ndrange_kernel": "kernel",
    "task": "kernel",
    "read_buffer": "transfer",
    "write_buffer": "transfer",
    "copy_buffer": "transfer",
    "fill_buffer": "transfer",
    "marker": "sync",
    "barrier": "sync",
}

#: pid reserved for harness tracer spans.
HARNESS_PID_NAME = "harness (host clock)"


def _ns_to_us(ns: int) -> float:
    return ns / 1e3


class ChromeTraceExporter:
    """Accumulates trace events; subscribe it to an :class:`EventBus`.

    Usage::

        exporter = ChromeTraceExporter()
        with exporter.attached():          # global bus by default
            run_benchmark(config)
        exporter.write("run.trace.json")
    """

    def __init__(self, include_counters: bool = True):
        self.include_counters = include_counters
        self.trace_events: list[dict] = []
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, int], int] = {}
        self._queue_serial: dict[int, int] = {}
        self._async_id = 0

    # ------------------------------------------------------------------
    def _pid(self, name: str) -> int:
        pid = self._pids.get(name)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[name] = pid
            self.trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "ts": 0,
                "args": {"name": name},
            })
        return pid

    def _tid(self, pid: int, queue) -> int:
        key = (pid, id(queue))
        tid = self._tids.get(key)
        if tid is None:
            serial = self._queue_serial.setdefault(id(queue),
                                                   len(self._queue_serial))
            tid = len(self._tids) + 1
            self._tids[key] = tid
            self.trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": f"queue {serial}"},
            })
        return tid

    # ------------------------------------------------------------------
    def on_event(self, queue, event) -> None:
        """Event-bus callback: record one completed command."""
        pid = self._pid(queue.device.name)
        tid = self._tid(pid, queue)
        command = event.command_type.value
        category = _CATEGORY.get(command, "command")
        name = event.info.get("kernel", command)

        start = event.start_ns
        end = event.end_ns
        if start is None or end is None:
            return  # never completed; nothing to draw

        if category == "sync":
            # markers/barriers are instants, not slices
            self.trace_events.append({
                "name": name, "cat": category, "ph": "i",
                "ts": _ns_to_us(start), "pid": pid, "tid": tid, "s": "t",
            })
        else:
            args = {
                k: event.info[k]
                for k in ("bytes", "work_items", "work_groups", "energy_j")
                if k in event.info
            }
            self.trace_events.append({
                "name": name, "cat": category, "ph": "X",
                "ts": _ns_to_us(start),
                "dur": max(_ns_to_us(end - start), 0.001),
                "pid": pid, "tid": tid, "args": args,
            })

        queued = event.queued_ns
        if queued is not None and start > queued:
            self._async_id += 1
            common = {"name": name, "cat": "queue_delay", "pid": pid,
                      "tid": tid, "id": self._async_id}
            self.trace_events.append(
                {**common, "ph": "b", "ts": _ns_to_us(queued)})
            self.trace_events.append(
                {**common, "ph": "e", "ts": _ns_to_us(start)})

        if self.include_counters:
            energy = event.info.get("energy_j")
            if energy is not None:
                self.trace_events.append({
                    "name": "energy (J)", "ph": "C", "pid": pid,
                    "ts": _ns_to_us(end), "args": {"J": float(energy)},
                })
            breakdown = event.info.get("breakdown")
            utilization = getattr(breakdown, "utilization", None)
            if utilization is not None:
                self.trace_events.append({
                    "name": "occupancy", "ph": "C", "pid": pid,
                    "ts": _ns_to_us(start),
                    "args": {"utilization": float(utilization)},
                })

    # ------------------------------------------------------------------
    def add_span(self, span: Span, origin_ns: int = 0) -> None:
        """Record one harness span as an async slice on the harness pid."""
        if not span.ended:
            return
        pid = self._pid(HARNESS_PID_NAME)
        self._async_id += 1
        common = {
            "name": span.name, "cat": "span", "pid": pid,
            "tid": span.depth + 1, "id": self._async_id,
        }
        args = dict(span.attributes)
        # ids let tools (repro trace --summary) rebuild the exact span
        # tree instead of guessing nesting from timestamps
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        self.trace_events.append({
            **common, "ph": "b", "ts": _ns_to_us(span.start_ns - origin_ns),
            "args": args,
        })
        self.trace_events.append({
            **common, "ph": "e", "ts": _ns_to_us(span.end_ns - origin_ns)})

    def add_tracer(self, tracer: Tracer) -> int:
        """Export all finished spans, rebased so the first starts at 0."""
        spans = [s for s in tracer.finished if s.ended]
        if not spans:
            return 0
        origin = min(s.start_ns for s in spans)
        for span in spans:
            self.add_span(span, origin_ns=origin)
        return len(spans)

    # ------------------------------------------------------------------
    @contextmanager
    def attached(self, bus: EventBus | None = None):
        """Scoped subscription to ``bus`` (the global bus by default)."""
        bus = bus if bus is not None else GLOBAL_EVENT_BUS
        with bus.subscribed(self.on_event):
            yield self

    # ------------------------------------------------------------------
    @property
    def slice_count(self) -> int:
        """Number of duration (``ph: "X"``) slices recorded."""
        return sum(1 for e in self.trace_events if e["ph"] == "X")

    def to_dict(self) -> dict:
        """The whole trace as a Trace Event Format dict."""
        # Metadata first, then everything else in timestamp order, so
        # the file is monotone and viewers name tracks before slices.
        ordered = sorted(
            self.trace_events,
            key=lambda e: (e["ph"] != "M", e.get("ts", 0)),
        )
        return {
            "traceEvents": ordered,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.telemetry.chrometrace"},
        }

    def dumps(self, indent: int | None = None) -> str:
        """The trace as JSON text (Chrome/Perfetto-loadable)."""
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path) -> Path:
        """Write the trace JSON to ``path``; returns the path."""
        path = Path(path)
        path.write_text(self.dumps())
        return path

    def __len__(self) -> int:
        return len(self.trace_events)


# ----------------------------------------------------------------------
def trace_from_recorder(recorder, name: str | None = None) -> ChromeTraceExporter:
    """Replay a saved LSB :class:`~repro.scibench.recorder.Recorder`.

    Recorder measurements carry durations but no absolute timestamps,
    so the replay lays samples end-to-end on a single timeline: one
    process named after the recorder, one thread per region, slices in
    recorded order.  Energy-tagged samples also emit the energy counter
    track.  This is what ``opendwarfs trace lsb.kmeans.r0`` shows.
    """
    exporter = ChromeTraceExporter()
    pid = exporter._pid(name or recorder.name or "recorder replay")
    tids: dict[str, int] = {}
    cursor_us = 0.0
    for m in recorder._measurements:
        tid = tids.get(m.region)
        if tid is None:
            tid = len(tids) + 1
            tids[m.region] = tid
            exporter.trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": m.region},
            })
        dur_us = max(m.time_s * 1e6, 0.001)
        slice_name = m.tags.get("kernel") or m.tags.get("command") or m.region
        exporter.trace_events.append({
            "name": slice_name, "cat": m.region, "ph": "X",
            "ts": cursor_us, "dur": dur_us, "pid": pid, "tid": tid,
            "args": {k: v for k, v in m.tags.items()},
        })
        if m.energy_j is not None:
            exporter.trace_events.append({
                "name": "energy (J)", "ph": "C", "pid": pid,
                "ts": cursor_us + dur_us, "args": {"J": float(m.energy_j)},
            })
        cursor_us += dur_us
    return exporter
