"""Observability for the whole harness: tracing, metrics, trace export.

The paper's contribution is measurement infrastructure; this package is
its runtime-observability counterpart, built from four cooperating
pieces (none of which imports the rest of ``repro``, so every layer can
use them):

* :mod:`~repro.telemetry.tracer` — nested spans with attributes and a
  process-global default tracer (disabled ⇒ zero-overhead no-op path);
* :mod:`~repro.telemetry.hooks` — the event-hook bus through which
  every completed :class:`~repro.ocl.event.Event` is published
  (the simulated ``clSetEventCallback``);
* :mod:`~repro.telemetry.chrometrace` — Chrome trace-event / Perfetto
  JSON export of events, queue delays, energy/occupancy counters and
  harness spans;
* :mod:`~repro.telemetry.metrics` — counter/gauge/histogram registry
  with Prometheus text exposition;
* :mod:`~repro.telemetry.runlog` — structured JSONL run log;
* :mod:`~repro.telemetry.profile` — phase-attributed self-profiling
  (hotspot tables, folded stacks, per-cell allocation attribution).
"""

from .chrometrace import ChromeTraceExporter, trace_from_recorder
from .hooks import EventBus, GLOBAL_EVENT_BUS, on_event
from .metrics import (
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .profile import (
    KNOWN_PHASES,
    PhaseSummary,
    ProfileReport,
    ProfileSession,
    TraceSummary,
    folded_stacks,
    phase_summary,
    summarize_trace_events,
)
from .runlog import (
    RunLog,
    get_default_runlog,
    memory_runlog,
    read_jsonl,
    set_default_runlog,
)
from .tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "BucketHistogram",
    "ChromeTraceExporter",
    "Counter",
    "EventBus",
    "GLOBAL_EVENT_BUS",
    "Gauge",
    "Histogram",
    "KNOWN_PHASES",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PhaseSummary",
    "ProfileReport",
    "ProfileSession",
    "RunLog",
    "Span",
    "TraceSummary",
    "Tracer",
    "default_registry",
    "folded_stacks",
    "get_default_runlog",
    "get_tracer",
    "memory_runlog",
    "on_event",
    "phase_summary",
    "read_jsonl",
    "set_default_runlog",
    "set_tracer",
    "summarize_trace_events",
    "trace_from_recorder",
    "tracing",
]
