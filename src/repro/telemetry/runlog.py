"""Structured JSONL run log.

One JSON object per line, append-ordered, machine-replayable — the
"reproducible measurement artifact" GEMMbench and the HPCChallenge
OpenCL suite argue benchmarking needs.  The harness writes a record per
lifecycle point (``run_start``, ``run_complete``, ``matrix_start``,
``matrix_complete``); anything JSON-unfriendly (numpy scalars, enums,
dataclasses) is coerced via ``str`` as a last resort so logging never
takes the run down.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path


def _json_default(value):
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        try:
            return item()
        except Exception:
            pass
    return str(value)


class RunLog:
    """Append-only JSONL writer over a path or an open text stream."""

    def __init__(self, target, clock=time.time):
        if isinstance(target, (str, Path)):
            self._stream = open(target, "w", encoding="utf-8")
            self._owns_stream = True
            self.path: Path | None = Path(target)
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self._clock = clock
        self.records_written = 0

    # ------------------------------------------------------------------
    def write(self, event: str, **fields) -> dict:
        """Append one record; returns the dict that was written."""
        record = {"event": event, "ts": self._clock(), **fields}
        self._stream.write(json.dumps(record, default=_json_default) + "\n")
        self._stream.flush()
        self.records_written += 1
        return record

    def write_record(self, record: dict) -> dict:
        """Append a pre-built record verbatim (timestamp and all).

        Used when merging child-process sweep logs into the parent run
        log: the record already carries the child's ``ts`` and
        ``worker_pid``, so re-stamping it through :meth:`write` would
        falsify the timeline.
        """
        self._stream.write(json.dumps(record, default=_json_default) + "\n")
        self._stream.flush()
        self.records_written += 1
        return record

    def close(self) -> None:
        """Close the underlying stream if this log opened it."""
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        where = str(self.path) if self.path else "<stream>"
        return f"<RunLog {where}: {self.records_written} records>"


def read_jsonl(path) -> list[dict]:
    """Load every record of a JSONL file (skipping blank lines)."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
#: Process-global run log the harness writes to when set (CLI wiring).
_default_runlog: RunLog | None = None


def get_default_runlog() -> RunLog | None:
    """The process-global run log, or ``None`` when logging is off."""
    return _default_runlog


def set_default_runlog(runlog: RunLog | None) -> RunLog | None:
    """Install (or clear, with None) the global run log; returns previous."""
    global _default_runlog
    previous = _default_runlog
    _default_runlog = runlog
    return previous


def memory_runlog(clock=time.time) -> tuple[RunLog, io.StringIO]:
    """A RunLog writing to an in-memory buffer (tests, dry runs)."""
    buffer = io.StringIO()
    return RunLog(buffer, clock=clock), buffer
