"""Event-hook bus: the simulated analogue of ``clSetEventCallback``.

Real OpenCL lets a host register a callback fired when an event reaches
``CL_COMPLETE``; profiling tools build timelines out of those
callbacks.  Here every :class:`~repro.ocl.queue.CommandQueue` publishes
each completed :class:`~repro.ocl.event.Event` to three buses in turn:

* the queue's own ``event_bus`` (per-queue subscribers),
* the owning context's ``event_bus`` (per-context subscribers),
* the process-global :data:`GLOBAL_EVENT_BUS` (whole-harness exporters
  such as the Chrome-trace writer, which must see events from queues it
  never got a handle to).

Subscribers are plain callables ``fn(queue, event)``.  ``publish`` is a
no-op returning immediately when a bus has no subscribers, so the
instrumented hot path costs one truthiness check per bus per command.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable


class EventBus:
    """An ordered list of ``fn(queue, event)`` subscribers."""

    __slots__ = ("_subscribers",)

    def __init__(self):
        self._subscribers: list[Callable] = []

    # ------------------------------------------------------------------
    @property
    def has_subscribers(self) -> bool:
        """Whether any callback is registered (publish is a no-op if not)."""
        return bool(self._subscribers)

    def subscribe(self, callback: Callable) -> Callable:
        """Register a callback; returns it, so this works as a decorator."""
        if not callable(callback):
            raise TypeError(f"subscriber must be callable, got {callback!r}")
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable) -> None:
        """Remove a callback; unknown callbacks are ignored."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    @contextmanager
    def subscribed(self, callback: Callable):
        """Scoped subscription: ``with bus.subscribed(fn): ...``."""
        self.subscribe(callback)
        try:
            yield callback
        finally:
            self.unsubscribe(callback)

    # ------------------------------------------------------------------
    def publish(self, queue, event) -> None:
        """Deliver ``event`` to every subscriber, in subscription order.

        Iterates over a snapshot so a callback may unsubscribe itself.
        """
        if not self._subscribers:
            return
        for callback in tuple(self._subscribers):
            callback(queue, event)

    def clear(self) -> None:
        """Remove every subscriber."""
        self._subscribers.clear()

    def __len__(self) -> int:
        return len(self._subscribers)

    def __repr__(self) -> str:
        return f"<EventBus: {len(self._subscribers)} subscribers>"


#: Process-global bus every queue publishes to (after its own and its
#: context's).  Whole-run exporters subscribe here.
GLOBAL_EVENT_BUS = EventBus()


def on_event(callback: Callable) -> Callable:
    """Decorator/registration helper for the global bus."""
    return GLOBAL_EVENT_BUS.subscribe(callback)
