"""Span tracing for the harness.

A :class:`Tracer` produces nested :class:`Span` records — named,
attributed, nanosecond-stamped intervals — around harness phases (host
setup, transfers, the kernel loop, validation) the way an OpenTelemetry
SDK would around service handlers.  Spans nest via a per-tracer stack,
so ``with tracer.span("run"): with tracer.span("transfer"): ...``
yields a parent/child tree that the Chrome-trace exporter renders as
stacked slices.

The process-global default tracer starts *disabled*: ``span()`` then
returns a shared no-op context manager without allocating or recording
anything, so instrumented code pays only an attribute load and a truth
test when nobody is listening (the zero-overhead guarantee the
acceptance tests pin down).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id (random, collision-improbable)."""
    return os.urandom(8).hex()


@dataclass
class Span:
    """One finished (or in-flight) traced interval."""

    name: str
    span_id: int
    parent_id: int | None = None
    depth: int = 0
    start_ns: int = 0
    end_ns: int | None = None
    attributes: dict = field(default_factory=dict)
    #: Trace the span belongs to.  Every span of one :class:`Tracer`
    #: shares the tracer's id; spans shipped back from sweep workers
    #: carry the parent's id, which is how N processes produce one
    #: coherent trace instead of N disconnected logs.
    trace_id: str | None = None

    def set_attribute(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute on this span."""
        self.attributes[key] = value

    @property
    def ended(self) -> bool:
        """Whether the span has been closed."""
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        """Span duration in nanoseconds; raises if still open."""
        if self.end_ns is None:
            raise RuntimeError(f"span {self.name!r} has not ended")
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        """Span duration in seconds; raises if still open."""
        return self.duration_ns * 1e-9

    def to_dict(self) -> dict:
        """The span as a JSON-ready dict."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attributes": dict(self.attributes),
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (worker IPC)."""
        return cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            depth=payload.get("depth", 0),
            start_ns=payload.get("start_ns", 0),
            end_ns=payload.get("end_ns"),
            attributes=dict(payload.get("attributes", {})),
            trace_id=payload.get("trace_id"),
        )


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracer fast path."""

    __slots__ = ()

    def set_attribute(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The single no-op span/context-manager instance.  ``tracer.span(...)``
#: returns exactly this object whenever the tracer is disabled, so the
#: identity check ``tracer.span("a") is NOOP_SPAN`` proves the fast path.
NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager that opens a real span on a tracer's stack."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._start(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.set_attribute("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Collects nested spans; disabled by default construction choice.

    Parameters
    ----------
    enabled:
        When False, :meth:`span` returns :data:`NOOP_SPAN` and nothing
        is recorded.
    clock:
        Nanosecond clock; injectable for deterministic tests.  Defaults
        to ``time.perf_counter_ns`` (wall time — spans time the *host*
        harness, while :class:`~repro.ocl.event.Event` timestamps live
        on the simulated device clock).  On Linux ``perf_counter_ns``
        reads ``CLOCK_MONOTONIC``, which is machine-wide, so spans
        recorded by sweep workers on the same host share the parent's
        time base and merge onto one timeline.
    trace_id:
        Identity of the trace every span of this tracer belongs to.
        Workers adopt the parent sweep's id via
        :meth:`propagation_context`; ``None`` generates a fresh one.
    """

    def __init__(self, enabled: bool = True, clock=time.perf_counter_ns,
                 trace_id: str | None = None):
        self.enabled = enabled
        self._clock = clock
        self._stack: list[Span] = []
        self._next_id = 1
        self.finished: list[Span] = []
        self.trace_id = trace_id if trace_id is not None else new_trace_id()

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes):
        """Open a span: ``with tracer.span("phase", benchmark="fft"):``."""
        if not self.enabled:
            return NOOP_SPAN
        return _ActiveSpan(self, name, attributes)

    def _start(self, name: str, attributes: dict) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            start_ns=self._clock(),
            attributes=dict(attributes),
            trace_id=self.trace_id,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end_ns = self._clock()
        # tolerate out-of-order exits rather than corrupting the stack
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)
        self.finished.append(span)

    # ------------------------------------------------------------------
    # Cross-process propagation
    # ------------------------------------------------------------------
    def propagation_context(self) -> dict | None:
        """The context to ship to a worker process, or ``None`` when off.

        The worker builds its tracer with
        ``Tracer.from_context(ctx)``, records spans locally, and ships
        ``to_dicts()`` back; the parent then :meth:`graft`\\ s them under
        the span that represents the worker's unit of work.
        """
        if not self.enabled:
            return None
        return {"trace_id": self.trace_id}

    @classmethod
    def from_context(cls, context: dict | None) -> "Tracer":
        """A worker-side tracer adopting a shipped propagation context.

        ``None`` (tracing disabled in the parent) yields a disabled
        tracer, preserving the no-op fast path end to end.
        """
        if context is None:
            return cls(enabled=False)
        return cls(enabled=True, trace_id=context.get("trace_id"))

    def graft(self, span_dicts: list[dict],
              parent: Span | None = None) -> list[Span]:
        """Adopt finished spans from another process into this tracer.

        Span ids are remapped into this tracer's id space (worker ids
        restart at 1 in every process, so shipping them verbatim would
        collide); the *relative* parent/child links inside the shipped
        set are preserved, and its root spans are re-parented under
        ``parent`` (default: the innermost open span).  Depths shift by
        the graft point's depth so the tree stays consistent.  Returns
        the adopted spans, already appended to :attr:`finished`.
        """
        if not self.enabled:
            return []
        parent = parent if parent is not None else self.current_span
        idmap: dict[int, int] = {}
        for payload in span_dicts:
            idmap[payload["span_id"]] = self._next_id
            self._next_id += 1
        base_depth = (parent.depth + 1) if parent is not None else 0
        grafted: list[Span] = []
        for payload in span_dicts:
            span = Span.from_dict(payload)
            span.span_id = idmap[span.span_id]
            if span.parent_id in idmap:
                span.parent_id = idmap[span.parent_id]
            else:
                span.parent_id = parent.span_id if parent is not None else None
            span.depth = base_depth + payload.get("depth", 0)
            if span.trace_id is None:
                span.trace_id = self.trace_id
            self.finished.append(span)
            grafted.append(span)
        return grafted

    # ------------------------------------------------------------------
    @property
    def current_span(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def enable(self) -> None:
        """Start recording spans."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; :meth:`span` returns :data:`NOOP_SPAN`."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all finished spans and any open stack."""
        self.finished.clear()
        self._stack.clear()

    def to_dicts(self) -> list[dict]:
        """All finished spans as JSON-ready dicts, in completion order."""
        return [s.to_dict() for s in self.finished]

    def __len__(self) -> int:
        return len(self.finished)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state}: {len(self.finished)} finished spans>"


#: Process-global default tracer, disabled until someone opts in.
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer instrumented code should use."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the global default; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Temporarily install (and enable) a tracer as the global default.

    Yields the installed tracer; the previous default is restored on
    exit.  ``with tracing() as t: run_benchmark(...)`` is the one-liner
    for capturing harness spans.
    """
    tracer = tracer if tracer is not None else Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
